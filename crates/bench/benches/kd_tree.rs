//! Microbenchmarks for the kd-tree substrate: the packed leaf-bucketed tree
//! (`KdTree`) head-to-head against the seed's one-point-per-node arena tree
//! (`IncrementalKdTree`) on bulk build, range counting, range search and
//! nearest-neighbour search, plus the incremental-insert path Ex-DPC uses.
//!
//! Results are written to `BENCH_kdtree.json` (schema in `crates/bench/README.md`)
//! so the perf trajectory of the local-density hot path is recorded PR over PR.
//!
//! Flags: `--n <points>` (default 100,000) `--out <json>` (default
//! `BENCH_kdtree.json`). The dataset is clustered 2-d (Gaussian blobs) — the
//! shape the paper's workloads have and the one where subtree-count pruning
//! matters — plus a uniform 3-d set covering the generic kernel path.

use dpc_bench::micro::{bench_record, write_bench_json, BenchRecord};
use dpc_data::generators::{gaussian_blobs, uniform};
use dpc_geometry::Dataset;
use dpc_index::{IncrementalKdTree, KdTree};
use std::hint::black_box;

/// Queries per timed kernel; each bench iteration issues one query.
const QUERIES: usize = 2_000;

fn clustered_2d(n: usize) -> Dataset {
    let centers: Vec<(f64, f64)> = (0..10)
        .map(|i| (100.0 + 250.0 * f64::from(i % 4), 100.0 + 300.0 * f64::from(i / 4)))
        .collect();
    gaussian_blobs(&centers, n.div_ceil(10), 20.0, 1)
}

/// Benchmarks one tree pairing on one dataset, returning the records.
fn run_suite(records: &mut Vec<BenchRecord>, data: &Dataset, radius: f64, label: &str) {
    let n = data.len();
    let d = data.dim();

    records.push(bench_record(&format!("packed_build_{label}"), n, d, 5, || {
        KdTree::build(data).len()
    }));
    records.push(bench_record(&format!("arena_build_{label}"), n, d, 5, || {
        IncrementalKdTree::build(data).len()
    }));

    let packed = KdTree::build(data);
    let arena = IncrementalKdTree::build(data);

    let mut i = 0usize;
    records.push(bench_record(&format!("packed_range_count_{label}"), n, d, QUERIES, || {
        i = (i + 97) % n;
        black_box(packed.range_count(data.point(i), radius, Some(i)))
    }));
    let mut i = 0usize;
    records.push(bench_record(&format!("arena_range_count_{label}"), n, d, QUERIES, || {
        i = (i + 97) % n;
        black_box(arena.range_count(data.point(i), radius, Some(i)))
    }));

    let mut buf: Vec<usize> = Vec::new();
    let mut i = 0usize;
    records.push(bench_record(&format!("packed_range_search_{label}"), n, d, QUERIES, || {
        i = (i + 97) % n;
        packed.range_search_into(data.point(i), radius, &mut buf);
        black_box(buf.len())
    }));
    let mut i = 0usize;
    records.push(bench_record(&format!("arena_range_search_{label}"), n, d, QUERIES, || {
        i = (i + 97) % n;
        arena.range_search_into(data.point(i), radius, &mut buf);
        black_box(buf.len())
    }));

    let mut i = 0usize;
    records.push(bench_record(&format!("packed_nearest_neighbor_{label}"), n, d, QUERIES, || {
        i = (i + 31) % n;
        black_box(packed.nearest_neighbor(data.point(i), Some(i)))
    }));
    let mut i = 0usize;
    records.push(bench_record(&format!("arena_nearest_neighbor_{label}"), n, d, QUERIES, || {
        i = (i + 31) % n;
        black_box(arena.nearest_neighbor(data.point(i), Some(i)))
    }));
}

fn main() {
    let mut n = 100_000usize;
    let mut out = std::path::PathBuf::from("BENCH_kdtree.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => n = args.next().expect("--n requires a value").parse().expect("--n <points>"),
            "--out" => out = args.next().expect("--out requires a path").into(),
            "--bench" => {} // appended by `cargo bench`
            other => panic!("unknown argument: {other} (flags: --n <points> --out <json>)"),
        }
    }

    let mut records: Vec<BenchRecord> = Vec::new();

    // Primary workload: clustered 2-d, the acceptance surface for the packed
    // tree (one range count per point is the Ex-DPC density phase).
    let data2 = clustered_2d(n);
    println!("kd_tree clustered 2d (n = {})", data2.len());
    run_suite(&mut records, &data2, 10.0, "2d");

    let mut inserted = 0usize;
    records.push(bench_record("arena_incremental_insert_2d", data2.len(), 2, 5, || {
        let mut tree = IncrementalKdTree::new(&data2);
        for id in 0..data2.len() {
            tree.insert(id);
        }
        inserted = tree.len();
        inserted
    }));

    // Secondary workload: uniform 3-d at n/4, covering the d = 3 kernel and
    // low-selectivity queries.
    let n3 = (n / 4).max(1_000);
    let data3 = uniform(n3, 3, 1_000.0, 7);
    println!("kd_tree uniform 3d (n = {n3})");
    run_suite(&mut records, &data3, 60.0, "3d");

    // Headline number: the ρ-phase primitive, packed vs the seed arena layout.
    let speedup = |kernel: &str| {
        let find = |name: &str| {
            records.iter().find(|r| r.kernel == name).map(|r| r.mean_secs).unwrap_or(f64::NAN)
        };
        find(&format!("arena_{kernel}")) / find(&format!("packed_{kernel}"))
    };
    println!();
    println!("range_count speedup (2d, mean): {:.2}x", speedup("range_count_2d"));
    println!("range_search speedup (2d, mean): {:.2}x", speedup("range_search_2d"));
    println!("nearest_neighbor speedup (2d, mean): {:.2}x", speedup("nearest_neighbor_2d"));

    write_bench_json(&out, "kd_tree", &records).expect("write BENCH json");
    println!("wrote {}", out.display());
}

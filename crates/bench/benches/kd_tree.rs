//! Microbenchmarks for the kd-tree substrate: bulk build, incremental
//! insertion, range counting and nearest-neighbour search.

use dpc_bench::micro::bench;
use dpc_data::generators::uniform;
use dpc_index::KdTree;
use std::hint::black_box;

const N: usize = 20_000;

fn main() {
    let data = uniform(N, 2, 100_000.0, 1);
    println!("kd_tree (n = {N})");

    bench("bulk_build_20k", 10, || KdTree::build(&data).len());

    bench("incremental_insert_20k", 10, || {
        let mut tree = KdTree::new_empty(&data);
        for id in 0..data.len() {
            tree.insert(id);
        }
        tree.len()
    });

    let tree = KdTree::build(&data);
    let mut i = 0usize;
    bench("range_count_dcut_250", 2_000, || {
        i = (i + 97) % data.len();
        black_box(tree.range_count(data.point(i), 250.0, Some(i)))
    });

    let mut j = 0usize;
    bench("nearest_neighbor", 2_000, || {
        j = (j + 31) % data.len();
        black_box(tree.nearest_neighbor(data.point(j), Some(j)))
    });
}

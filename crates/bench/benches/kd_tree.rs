//! Microbenchmarks for the kd-tree substrate: the packed leaf-bucketed tree
//! (`KdTree`) head-to-head against the seed's one-point-per-node arena tree
//! (`IncrementalKdTree`) on bulk build (serial and fork-join parallel), range
//! counting, range search and nearest-neighbour search, plus the
//! incremental-insert path Ex-DPC uses, and the batched bucket kernels
//! (`batch_count_*` / `batch_search_*`: the scalar reference vs the
//! dispatching kernel, which is SIMD under `--features simd` on x86_64).
//!
//! Results are written to `BENCH_kdtree.json` (schema in `crates/bench/README.md`)
//! so the perf trajectory of the local-density hot path is recorded PR over PR.
//!
//! Flags: `--n <points>` (default 100,000), `--build-n <points>` (default
//! 1,000,000; the cardinality of the build-scaling kernels), `--threads <T>`
//! (default: available hardware parallelism; the parallel-build kernels),
//! `--out <json>` (default `BENCH_kdtree.json`), `--check` (validate the
//! emitted JSON against the schema and exit non-zero on drift). The dataset is
//! clustered 2-d (Gaussian blobs) — the shape the paper's workloads have and
//! the one where subtree-count pruning matters — plus a uniform 3-d set
//! covering the generic kernel path.

use dpc_bench::micro::{bench_record, write_bench_json, BenchRecord};
use dpc_bench::resolve_out_path;
use dpc_bench::schema::{check_or_exit, required};
use dpc_data::generators::{gaussian_blobs, uniform};
use dpc_geometry::{batch, Dataset};
use dpc_index::{IncrementalKdTree, KdTree};
use dpc_parallel::Executor;
use std::hint::black_box;

/// Queries per timed kernel; each bench iteration issues one query.
const QUERIES: usize = 2_000;

/// Rows per batch-kernel invocation (a large contiguous strip, so the timed
/// work is the kernel itself rather than loop setup).
const BATCH_ROWS: usize = 4_096;

/// Benchmarks the batched bucket kernels over one contiguous strip of the
/// dataset's row-major coordinates: the scalar reference against the
/// dispatching kernel (SIMD when the `simd` feature is on and the CPU has
/// SSE2/AVX2; the same scalar path otherwise, keeping the kernel set stable).
fn run_batch_suite(records: &mut Vec<BenchRecord>, data: &Dataset, radius: f64, label: &str) {
    let d = data.dim();
    let rows_n = BATCH_ROWS.min(data.len());
    let rows = &data.flat()[..rows_n * d];
    let r_sq = radius * radius;
    let mut i = 0usize;
    records.push(bench_record(&format!("batch_count_scalar_{label}"), rows_n, d, QUERIES, || {
        i = (i + 97) % rows_n;
        black_box(batch::count_within_scalar(data.point(i), rows, d, r_sq))
    }));
    let mut i = 0usize;
    records.push(bench_record(&format!("batch_count_simd_{label}"), rows_n, d, QUERIES, || {
        i = (i + 97) % rows_n;
        black_box(batch::count_within(data.point(i), rows, d, r_sq))
    }));
    let mut hits: Vec<usize> = Vec::new();
    let mut i = 0usize;
    records.push(bench_record(&format!("batch_search_scalar_{label}"), rows_n, d, QUERIES, || {
        i = (i + 97) % rows_n;
        hits.clear();
        batch::search_within_into_scalar(data.point(i), rows, d, r_sq, &mut hits);
        black_box(hits.len())
    }));
    let mut i = 0usize;
    records.push(bench_record(&format!("batch_search_simd_{label}"), rows_n, d, QUERIES, || {
        i = (i + 97) % rows_n;
        hits.clear();
        batch::search_within_into(data.point(i), rows, d, r_sq, &mut hits);
        black_box(hits.len())
    }));
}

fn clustered_2d(n: usize) -> Dataset {
    let centers: Vec<(f64, f64)> = (0..10)
        .map(|i| (100.0 + 250.0 * f64::from(i % 4), 100.0 + 300.0 * f64::from(i / 4)))
        .collect();
    gaussian_blobs(&centers, n.div_ceil(10), 20.0, 1)
}

/// Benchmarks one tree pairing on one dataset, returning the records.
fn run_suite(
    records: &mut Vec<BenchRecord>,
    data: &Dataset,
    radius: f64,
    label: &str,
    executor: &Executor,
) {
    let n = data.len();
    let d = data.dim();

    records.push(bench_record(&format!("packed_build_{label}"), n, d, 5, || {
        KdTree::build(data).len()
    }));
    records.push(bench_record(&format!("packed_build_parallel_{label}"), n, d, 5, || {
        KdTree::build_parallel(data, executor).len()
    }));
    records.push(bench_record(&format!("arena_build_{label}"), n, d, 5, || {
        IncrementalKdTree::build(data).len()
    }));

    let packed = KdTree::build(data);
    let arena = IncrementalKdTree::build(data);

    let mut i = 0usize;
    records.push(bench_record(&format!("packed_range_count_{label}"), n, d, QUERIES, || {
        i = (i + 97) % n;
        black_box(packed.range_count(data.point(i), radius, Some(i)))
    }));
    let mut i = 0usize;
    records.push(bench_record(&format!("arena_range_count_{label}"), n, d, QUERIES, || {
        i = (i + 97) % n;
        black_box(arena.range_count(data.point(i), radius, Some(i)))
    }));

    let mut buf: Vec<usize> = Vec::new();
    let mut i = 0usize;
    records.push(bench_record(&format!("packed_range_search_{label}"), n, d, QUERIES, || {
        i = (i + 97) % n;
        packed.range_search_into(data.point(i), radius, &mut buf);
        black_box(buf.len())
    }));
    let mut i = 0usize;
    records.push(bench_record(&format!("arena_range_search_{label}"), n, d, QUERIES, || {
        i = (i + 97) % n;
        arena.range_search_into(data.point(i), radius, &mut buf);
        black_box(buf.len())
    }));

    let mut i = 0usize;
    records.push(bench_record(&format!("packed_nearest_neighbor_{label}"), n, d, QUERIES, || {
        i = (i + 31) % n;
        black_box(packed.nearest_neighbor(data.point(i), Some(i)))
    }));
    let mut i = 0usize;
    records.push(bench_record(&format!("arena_nearest_neighbor_{label}"), n, d, QUERIES, || {
        i = (i + 31) % n;
        black_box(arena.nearest_neighbor(data.point(i), Some(i)))
    }));
}

fn main() {
    let mut n = 100_000usize;
    let mut build_n = 1_000_000usize;
    let mut threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut out = resolve_out_path("BENCH_kdtree.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => n = args.next().expect("--n requires a value").parse().expect("--n <points>"),
            "--build-n" => {
                build_n = args
                    .next()
                    .expect("--build-n requires a value")
                    .parse()
                    .expect("--build-n <points>")
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads requires a value")
                    .parse()
                    .expect("--threads <T>")
            }
            "--out" => out = resolve_out_path(&args.next().expect("--out requires a path")),
            "--check" => check = true,
            "--bench" => {} // appended by `cargo bench`
            other => panic!(
                "unknown argument: {other} (flags: --n <points> --build-n <points> --threads <T> --out <json> --check)"
            ),
        }
    }
    let executor = Executor::new(threads);

    let mut records: Vec<BenchRecord> = Vec::new();

    // Primary workload: clustered 2-d, the acceptance surface for the packed
    // tree (one range count per point is the Ex-DPC density phase).
    let data2 = clustered_2d(n);
    println!("kd_tree clustered 2d (n = {}, threads = {threads})", data2.len());
    run_suite(&mut records, &data2, 10.0, "2d", &executor);

    let mut inserted = 0usize;
    records.push(bench_record("arena_incremental_insert_2d", data2.len(), 2, 5, || {
        let mut tree = IncrementalKdTree::new(data2.dim());
        for id in 0..data2.len() {
            tree.insert(id, data2.point(id));
        }
        inserted = tree.len();
        inserted
    }));

    // Secondary workload: uniform 3-d at n/4, covering the d = 3 kernel and
    // low-selectivity queries.
    let n3 = (n / 4).max(1_000);
    let data3 = uniform(n3, 3, 1_000.0, 7);
    println!("kd_tree uniform 3d (n = {n3})");
    run_suite(&mut records, &data3, 60.0, "3d", &executor);

    // Batched bucket kernels, scalar vs SIMD dispatch, on both workloads.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    println!(
        "batch dispatch path: {}",
        if std::arch::is_x86_feature_detected!("avx2") { "avx2" } else { "sse2" }
    );
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    println!("batch dispatch path: scalar (simd feature off or non-x86_64)");
    run_batch_suite(&mut records, &data2, 10.0, "2d");
    run_batch_suite(&mut records, &data3, 60.0, "3d");

    // Build scaling: the parallel fork-join build against the serial build at
    // a cardinality where construction is the dominant fixed cost of the
    // index-based algorithms (default n = 1M, --build-n to override).
    let xl = clustered_2d(build_n);
    println!("kd_tree build scaling (n = {}, threads = {threads})", xl.len());
    records
        .push(bench_record("packed_build_serial_xl", xl.len(), 2, 3, || KdTree::build(&xl).len()));
    records.push(bench_record("packed_build_parallel_xl", xl.len(), 2, 3, || {
        KdTree::build_parallel(&xl, &executor).len()
    }));

    // Headline numbers: query kernels packed vs the seed arena layout, and the
    // fork-join build vs the serial build.
    let mean_of = |name: &str| {
        records.iter().find(|r| r.kernel == name).map(|r| r.mean_secs).unwrap_or(f64::NAN)
    };
    let speedup =
        |kernel: &str| mean_of(&format!("arena_{kernel}")) / mean_of(&format!("packed_{kernel}"));
    println!();
    println!("range_count speedup (2d, mean): {:.2}x", speedup("range_count_2d"));
    println!("range_search speedup (2d, mean): {:.2}x", speedup("range_search_2d"));
    println!("nearest_neighbor speedup (2d, mean): {:.2}x", speedup("nearest_neighbor_2d"));
    for label in ["2d", "3d"] {
        println!(
            "batch count/search simd-vs-scalar speedup ({label}, mean): {:.2}x / {:.2}x",
            mean_of(&format!("batch_count_scalar_{label}"))
                / mean_of(&format!("batch_count_simd_{label}")),
            mean_of(&format!("batch_search_scalar_{label}"))
                / mean_of(&format!("batch_search_simd_{label}")),
        );
    }
    println!(
        "parallel build speedup (n = {}, {} threads, mean): {:.2}x",
        xl.len(),
        threads,
        mean_of("packed_build_serial_xl") / mean_of("packed_build_parallel_xl")
    );

    write_bench_json(&out, "kd_tree", &records).expect("write BENCH json");
    println!("wrote {}", out.display());
    if check {
        check_or_exit(&out, "kd_tree", required::KD_TREE);
    }
}

//! Criterion microbenchmarks for the kd-tree substrate: bulk build,
//! incremental insertion, range counting and nearest-neighbour search.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpc_data::generators::uniform;
use dpc_index::KdTree;
use std::hint::black_box;

const N: usize = 20_000;

fn bench_kd_tree(c: &mut Criterion) {
    let data = uniform(N, 2, 100_000.0, 1);
    let mut group = c.benchmark_group("kd_tree");
    group.sample_size(10);

    group.bench_function("bulk_build_20k", |b| {
        b.iter(|| black_box(KdTree::build(&data)).len())
    });

    group.bench_function("incremental_insert_20k", |b| {
        b.iter_batched(
            || KdTree::new_empty(&data),
            |mut tree| {
                for id in 0..data.len() {
                    tree.insert(id);
                }
                black_box(tree.len())
            },
            BatchSize::SmallInput,
        )
    });

    let tree = KdTree::build(&data);
    group.bench_function("range_count_dcut_250", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 97) % data.len();
            black_box(tree.range_count(data.point(i), 250.0, Some(i)))
        })
    });

    group.bench_function("nearest_neighbor", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 31) % data.len();
            black_box(tree.nearest_neighbor(data.point(i), Some(i)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kd_tree);
criterion_main!(benches);

//! Benchmark and ablation of the cost-based partitioner: LPT greedy versus
//! round-robin (hash) partitioning on skewed per-cell costs — the design
//! choice behind Approx-DPC's load balancing (§4.5).

use dpc_bench::micro::bench;
use dpc_bench::BenchDataset;
use dpc_index::Grid;
use dpc_parallel::partition::{lpt_partition, round_robin_partition};
use dpc_parallel::Executor;

fn main() {
    // Real per-cell costs from the Household surrogate grid — heavily skewed.
    let dataset = BenchDataset::real_datasets()[1];
    let data = dataset.generate(20_000);
    let grid = Grid::build_parallel(
        &data,
        dataset.default_dcut() / (data.dim() as f64).sqrt(),
        &Executor::default(),
    );
    let costs: Vec<f64> = grid.cell_ids().map(|cell| grid.points(cell).len() as f64).collect();
    println!("partition ({} cells)", costs.len());

    for threads in [4usize, 16, 48] {
        bench(&format!("lpt_{threads}_threads"), 20, || lpt_partition(&costs, threads).imbalance());
        bench(&format!("round_robin_{threads}_threads"), 20, || {
            round_robin_partition(&costs, threads).imbalance()
        });
    }

    // Print the ablation numbers once so `cargo bench` output records them.
    for threads in [4usize, 16, 48] {
        println!(
            "partition imbalance ({} cells, {threads} threads): LPT = {:.3}, round-robin = {:.3}",
            costs.len(),
            lpt_partition(&costs, threads).imbalance(),
            round_robin_partition(&costs, threads).imbalance()
        );
    }
}

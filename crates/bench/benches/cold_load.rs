//! Cold-start benchmark: installing a serving epoch from a persisted
//! snapshot artifact versus refitting from scratch — the number that
//! justifies the artifact format. Decode + install (`snapshot_cold_load`)
//! skips the ρ/δ phases *and* the kd-tree build; only container validation,
//! structural re-validation and the `O(n)` label propagation remain.
//!
//! Kernels, at the base cardinality and again with an `_xl` suffix at
//! `--xl-n`:
//!
//! * `snapshot_encode`    — serialize dataset + model + tree + thresholds;
//! * `model_view`         — zero-copy `ModelRef` parse (header + checksums);
//! * `model_decode`       — owned `DpcModel::from_bytes` (full validation);
//! * `tree_decode`        — owned `KdTree::from_bytes` against the dataset;
//! * `snapshot_cold_load` — `Snapshot::from_artifact_bytes`: the whole
//!   serving install path off bytes;
//! * `full_refit`         — `ExDpc` fit + `Snapshot::new`: what the cold
//!   load replaces.
//!
//! Results go to `BENCH_cold_load.json` (schema in `crates/bench/README.md`).
//!
//! Flags: `--n <points>` (default 20,000), `--xl-n <points>` (default
//! 100,000), `--threads <T>` (default: available parallelism; drives the
//! refit baseline's executor and fit), `--out <json>` (default
//! `BENCH_cold_load.json`, resolved against the workspace root), `--check`
//! (validate the emitted JSON and exit non-zero on schema drift).

use dpc_bench::micro::{bench_record, write_bench_json, BenchRecord};
use dpc_bench::resolve_out_path;
use dpc_bench::schema::{check_or_exit, required};
use dpc_bench::{default_params, default_thresholds, BenchDataset};
use dpc_core::{DpcAlgorithm, DpcModel, ExDpc};
use dpc_index::KdTree;
use dpc_parallel::Executor;
use dpc_persist::{PersistModel, PersistTree, SnapshotArtifact};
use dpc_serve::Snapshot;
use std::sync::Arc;

/// Benchmarks one cardinality tier; `suffix` is `""` or `"_xl"`.
fn run_tier(
    n: usize,
    suffix: &str,
    threads: usize,
    records: &mut Vec<BenchRecord>,
    iters: usize,
    refit_iters: usize,
) {
    let dataset = BenchDataset::Syn;
    let data = dataset.generate(n);
    let d = data.dim();
    let params = default_params(&dataset, threads);
    let thresholds = default_thresholds(params.dcut);
    let executor = Executor::new(threads);

    let algo = ExDpc::new(params);
    let model = algo.fit(&data).expect("fit");
    let tree = KdTree::build(&data);
    let bytes = SnapshotArtifact::encode(&data, &model, &tree, &thresholds);
    println!(
        "cold_load{suffix} ({} n = {n}, artifact {:.1} MiB)",
        dataset.name(),
        bytes.len() as f64 / (1024.0 * 1024.0)
    );

    records.push(bench_record(&format!("snapshot_encode{suffix}"), n, d, iters, || {
        SnapshotArtifact::encode(&data, &model, &tree, &thresholds)
    }));
    records.push(bench_record(&format!("model_view{suffix}"), n, d, iters, || {
        DpcModel::view(&bytes).expect("view")
    }));
    records.push(bench_record(&format!("model_decode{suffix}"), n, d, iters, || {
        DpcModel::from_bytes(&bytes).expect("model decode")
    }));
    records.push(bench_record(&format!("tree_decode{suffix}"), n, d, iters, || {
        KdTree::from_bytes(&data, &bytes).expect("tree decode")
    }));
    records.push(bench_record(&format!("snapshot_cold_load{suffix}"), n, d, iters, || {
        Snapshot::from_artifact_bytes(&bytes).expect("cold load")
    }));
    // The baseline the cold load replaces: ρ/δ fit, kd-tree build, extract.
    records.push(bench_record(&format!("full_refit{suffix}"), n, d, refit_iters, || {
        let model = algo.fit(&data).expect("refit");
        Snapshot::new(Arc::new(data.clone()), model, thresholds, &executor)
    }));
}

fn main() {
    let mut n = 20_000usize;
    let mut xl_n = 100_000usize;
    let mut threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut out = resolve_out_path("BENCH_cold_load.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => n = args.next().expect("--n requires a value").parse().expect("--n <points>"),
            "--xl-n" => {
                xl_n =
                    args.next().expect("--xl-n requires a value").parse().expect("--xl-n <points>")
            }
            "--threads" => {
                threads =
                    args.next().expect("--threads requires a value").parse().expect("--threads <T>")
            }
            "--out" => out = resolve_out_path(&args.next().expect("--out requires a path")),
            "--check" => check = true,
            "--bench" => {} // appended by `cargo bench`
            other => panic!(
                "unknown argument: {other} (flags: --n <points> --xl-n <points> --threads <T> --out <json> --check)"
            ),
        }
    }

    let mut records: Vec<BenchRecord> = Vec::new();
    run_tier(n, "", threads, &mut records, 10, 3);
    run_tier(xl_n, "_xl", threads, &mut records, 5, 2);

    write_bench_json(&out, "cold_load", &records).expect("write BENCH json");
    println!("wrote {}", out.display());
    if check {
        check_or_exit(&out, "cold_load", required::COLD_LOAD);
    }
}

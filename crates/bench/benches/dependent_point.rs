//! Criterion benchmark of the dependent-point (δ) kernels: the Scan approach
//! versus Ex-DPC's incremental kd-tree approach.

use criterion::{criterion_group, criterion_main, Criterion};
use dpc_baselines::Scan;
use dpc_bench::{default_params, BenchDataset};
use dpc_core::{DpcAlgorithm, ExDpc};
use dpc_index::KdTree;
use std::hint::black_box;

const N: usize = 8_000;

fn bench_dependent_point(c: &mut Criterion) {
    let dataset = BenchDataset::Syn;
    let data = dataset.generate(N);
    let params = default_params(&dataset, 1);
    // Densities are shared input for both kernels.
    let tree = KdTree::build(&data);
    let rho = ExDpc::new(params).local_densities(&data, &tree);
    drop(tree);

    let mut group = c.benchmark_group("dependent_point");
    group.sample_size(10);

    group.bench_function("scan_early_termination", |b| {
        let algo = Scan::new(params);
        b.iter(|| black_box(algo.dependent_points(&data, &rho)))
    });

    group.bench_function("exdpc_incremental_kdtree", |b| {
        let algo = ExDpc::new(params);
        b.iter(|| black_box(algo.dependent_points(&data, &rho)))
    });

    group.bench_function("approx_dpc_full_run_for_reference", |b| {
        let algo = dpc_core::ApproxDpc::new(params);
        b.iter(|| black_box(algo.run(&data)).num_clusters())
    });

    group.finish();
}

criterion_group!(benches, bench_dependent_point);
criterion_main!(benches);

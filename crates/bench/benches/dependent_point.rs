//! Benchmark of the dependent-point (δ) kernels: the Scan approach versus
//! Ex-DPC's incremental kd-tree approach, plus a full Approx-DPC fit for
//! reference.

use dpc_baselines::Scan;
use dpc_bench::micro::bench;
use dpc_bench::{default_params, BenchDataset};
use dpc_core::{ApproxDpc, DpcAlgorithm, ExDpc};
use dpc_index::KdTree;

const N: usize = 8_000;

fn main() {
    let dataset = BenchDataset::Syn;
    let data = dataset.generate(N);
    let params = default_params(&dataset, 1);
    println!("dependent_point ({} n = {N})", dataset.name());

    // Densities are shared input for both kernels.
    let tree = KdTree::build(&data);
    let rho = ExDpc::new(params).local_densities(&data, &tree);
    drop(tree);

    let scan = Scan::new(params);
    bench("scan_early_termination", 5, || scan.dependent_points(&data, &rho));

    let exdpc = ExDpc::new(params);
    bench("exdpc_incremental_kdtree", 5, || exdpc.dependent_points(&data, &rho));

    let approx = ApproxDpc::new(params);
    bench("approx_dpc_full_fit_for_reference", 5, || approx.fit(&data).expect("fit Syn").len());
}

//! Microbenchmarks for the uniform grid: serial vs fork-join parallel CSR
//! construction (the last index-construction phase on the approximate fit
//! paths to parallelise), plus the joint range search of Approx-DPC (one
//! kd-tree query per cell) versus per-point range searches (Ex-DPC style).
//!
//! Results are written to `BENCH_grid_build.json` (schema in
//! `crates/bench/README.md`) so the grid-construction trajectory is recorded
//! PR over PR. `Grid::build_parallel` is byte-for-byte identical to
//! `Grid::build` at every thread count (the `layout_eq` contract), so the two
//! build kernels time the same output layout.
//!
//! Flags: `--n <points>` (default 20,000), `--threads <T>` (default:
//! available hardware parallelism; the parallel-build kernels), `--out
//! <json>` (default `BENCH_grid_build.json`; relative paths resolve against
//! the workspace root, not the `crates/bench` cwd `cargo bench` uses),
//! `--check` (validate the emitted JSON against the schema and exit non-zero
//! on drift). Workloads: the 2-d random-walk surrogate (13 walkers) with
//! `side = d_cut/√d` (the Approx-DPC geometry, few points per cell), and a
//! clustered Gaussian-blob set (many points per cell, scatter-dominated).
//!
//! The parallel-build kernels measure the fork-join win only on multi-core
//! hosts; on a single-CPU container they record spawn overhead (≈ 1.0×).

use dpc_bench::micro::{bench_record, write_bench_json, BenchRecord};
use dpc_bench::resolve_out_path;
use dpc_bench::schema::{check_or_exit, required};
use dpc_data::generators::{gaussian_blobs, random_walk};
use dpc_geometry::dist;
use dpc_index::{Grid, KdTree};
use dpc_parallel::Executor;

const DCUT: f64 = 250.0;

fn main() {
    let mut n = 20_000usize;
    let mut threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut out = resolve_out_path("BENCH_grid_build.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => n = args.next().expect("--n requires a value").parse().expect("--n <points>"),
            "--threads" => {
                threads =
                    args.next().expect("--threads requires a value").parse().expect("--threads <T>")
            }
            "--out" => out = resolve_out_path(&args.next().expect("--out requires a path")),
            "--check" => check = true,
            "--bench" => {} // appended by `cargo bench`
            other => panic!(
                "unknown argument: {other} (flags: --n <points> --threads <T> --out <json> --check)"
            ),
        }
    }
    let executor = Executor::new(threads);
    let mut records: Vec<BenchRecord> = Vec::new();

    // Primary workload: the 2-d random-walk surrogate (13 walkers) at the
    // Approx-DPC cell side d_cut/√d — many small cells.
    let data = random_walk(n, 13, 1e5, 3);
    let d = data.dim();
    let side = DCUT / (d as f64).sqrt();
    println!("grid_build (n = {n}, d = {d}, d_cut = {DCUT}, threads = {threads})");

    records
        .push(bench_record("grid_build_serial", n, d, 10, || Grid::build(&data, side).num_cells()));
    records.push(bench_record("grid_build_parallel", n, d, 10, || {
        Grid::build_parallel(&data, side, &executor).num_cells()
    }));

    // Low-dimensional workload: clustered 2-d (many points per cell, the
    // shape where the scatter pass dominates the key hashing).
    let centers: Vec<(f64, f64)> = (0..10)
        .map(|i| (100.0 + 250.0 * f64::from(i % 4), 100.0 + 300.0 * f64::from(i / 4)))
        .collect();
    let data2 = gaussian_blobs(&centers, n.div_ceil(10), 20.0, 1);
    let side2 = 10.0 / (2.0f64).sqrt();
    records.push(bench_record("grid_build_serial_blobs", data2.len(), 2, 10, || {
        Grid::build(&data2, side2).num_cells()
    }));
    records.push(bench_record("grid_build_parallel_blobs", data2.len(), 2, 10, || {
        Grid::build_parallel(&data2, side2, &executor).num_cells()
    }));

    // The joint range search the grid exists for, against the per-point
    // baseline (carried over from the pre-trajectory grid bench).
    let tree = KdTree::build(&data);
    let grid = Grid::build_parallel(&data, side, &executor);

    records.push(bench_record("per_point_range_searches", n, d, 5, || {
        let mut total = 0usize;
        for (i, p) in data.iter() {
            total += tree.range_count(p, DCUT, Some(i));
        }
        total
    }));
    records.push(bench_record("joint_range_search_per_cell", n, d, 5, || {
        let mut total = 0usize;
        let mut buffer = Vec::new();
        for cell in grid.cell_ids() {
            let center = grid.center(cell);
            let extra = grid
                .points(cell)
                .iter()
                .map(|&p| dist(&center, data.point(p)))
                .fold(0.0f64, f64::max);
            tree.range_search_into(&center, DCUT + extra, &mut buffer);
            total += buffer.len();
        }
        total
    }));

    let mean_of = |name: &str| {
        records.iter().find(|r| r.kernel == name).map(|r| r.mean_secs).unwrap_or(f64::NAN)
    };
    println!();
    println!(
        "parallel grid build speedup ({threads} threads, mean): {:.2}x (walk) / {:.2}x (blobs)",
        mean_of("grid_build_serial") / mean_of("grid_build_parallel"),
        mean_of("grid_build_serial_blobs") / mean_of("grid_build_parallel_blobs")
    );
    println!(
        "joint range search speedup over per-point (mean): {:.2}x",
        mean_of("per_point_range_searches") / mean_of("joint_range_search_per_cell")
    );

    write_bench_json(&out, "grid_build", &records).expect("write BENCH json");
    println!("wrote {}", out.display());
    if check {
        check_or_exit(&out, "grid_build", required::GRID_BUILD);
    }
}

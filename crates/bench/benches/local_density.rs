//! Benchmark of the local-density (ρ) kernels across algorithms.

use dpc_baselines::{RtreeScan, Scan};
use dpc_bench::micro::bench;
use dpc_bench::{default_params, BenchDataset};
use dpc_core::ExDpc;
use dpc_index::{KdTree, RTree};

const N: usize = 8_000;

fn main() {
    let dataset = BenchDataset::Syn;
    let data = dataset.generate(N);
    let params = default_params(&dataset, 1);
    println!("local_density ({} n = {N})", dataset.name());

    let scan = Scan::new(params);
    bench("scan", 5, || scan.local_densities(&data));

    let rtree_scan = RtreeScan::new(params);
    let rtree = RTree::build(&data);
    bench("rtree", 5, || rtree_scan.local_densities(&data, &rtree));

    let exdpc = ExDpc::new(params);
    let kdtree = KdTree::build(&data);
    bench("exdpc_kdtree", 5, || exdpc.local_densities(&data, &kdtree));
}

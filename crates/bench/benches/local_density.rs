//! Criterion benchmark of the local-density (ρ) kernels across algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use dpc_baselines::{RtreeScan, Scan};
use dpc_bench::{default_params, BenchDataset};
use dpc_core::ExDpc;
use dpc_index::{KdTree, RTree};
use std::hint::black_box;

const N: usize = 8_000;

fn bench_local_density(c: &mut Criterion) {
    let dataset = BenchDataset::Syn;
    let data = dataset.generate(N);
    let params = default_params(&dataset, 1);
    let mut group = c.benchmark_group("local_density");
    group.sample_size(10);

    group.bench_function("scan", |b| {
        let algo = Scan::new(params);
        b.iter(|| black_box(algo.local_densities(&data)))
    });

    group.bench_function("rtree", |b| {
        let algo = RtreeScan::new(params);
        let tree = RTree::build(&data);
        b.iter(|| black_box(algo.local_densities(&data, &tree)))
    });

    group.bench_function("exdpc_kdtree", |b| {
        let algo = ExDpc::new(params);
        let tree = KdTree::build(&data);
        b.iter(|| black_box(algo.local_densities(&data, &tree)))
    });

    group.finish();
}

criterion_group!(benches, bench_local_density);
criterion_main!(benches);

//! Benchmark of the local-density (ρ) kernels across algorithms: the full
//! linear scan, the R-tree, the seed's arena kd-tree, and the packed
//! leaf-bucketed kd-tree that Ex-DPC now uses — plus the index construction
//! itself (serial and fork-join parallel), which is the fixed cost every
//! index-based variant pays before any ρ work.
//!
//! Results are written to `BENCH_local_density.json` (schema in
//! `crates/bench/README.md`) so the ρ-phase trajectory is recorded PR over PR.
//!
//! Flags: `--n <points>` (default 100,000), `--threads <T>` (default:
//! available hardware parallelism; used by the parallel-build kernel — the ρ
//! kernels themselves run single-threaded so the trajectory measures the
//! kernels, not the scheduler), `--out <json>` (default
//! `BENCH_local_density.json`), `--check` (validate the emitted JSON and exit
//! non-zero on schema drift).

use dpc_baselines::{RtreeScan, Scan};
use dpc_bench::micro::{bench_record, write_bench_json, BenchRecord};
use dpc_bench::resolve_out_path;
use dpc_bench::schema::{check_or_exit, required};
use dpc_bench::{default_params, BenchDataset};
use dpc_core::framework::jittered_density;
use dpc_core::ExDpc;
use dpc_index::{IncrementalKdTree, KdTree, RTree};
use dpc_parallel::Executor;

/// The quadratic scan baseline is only timed up to this cardinality; above it
/// one iteration would dominate the whole bench run.
const SCAN_MAX_N: usize = 20_000;

fn main() {
    let mut n = 100_000usize;
    let mut threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut out = resolve_out_path("BENCH_local_density.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => n = args.next().expect("--n requires a value").parse().expect("--n <points>"),
            "--threads" => {
                threads =
                    args.next().expect("--threads requires a value").parse().expect("--threads <T>")
            }
            "--out" => out = resolve_out_path(&args.next().expect("--out requires a path")),
            "--check" => check = true,
            "--bench" => {} // appended by `cargo bench`
            other => panic!(
                "unknown argument: {other} (flags: --n <points> --threads <T> --out <json> --check)"
            ),
        }
    }

    let dataset = BenchDataset::Syn;
    let data = dataset.generate(n);
    let d = data.dim();
    let params = default_params(&dataset, 1);
    let executor = Executor::new(threads);
    println!("local_density ({} n = {n}, threads = {threads})", dataset.name());

    let mut records: Vec<BenchRecord> = Vec::new();

    // Index construction: the fixed cost before any ρ work.
    records.push(bench_record("build", n, d, 5, || KdTree::build(&data).len()));
    records.push(bench_record("build_parallel", n, d, 5, || {
        KdTree::build_parallel(&data, &executor).len()
    }));
    records.push(bench_record("build_arena", n, d, 5, || IncrementalKdTree::build(&data).len()));

    if n <= SCAN_MAX_N {
        let scan = Scan::new(params);
        records.push(bench_record("scan", n, d, 5, || scan.local_densities(&data)));
    } else {
        println!("scan{:>38} O(n²) baseline skipped at n = {n} (> {SCAN_MAX_N})", "");
    }

    let rtree_scan = RtreeScan::new(params);
    let rtree = RTree::build(&data);
    records.push(bench_record("rtree", n, d, 5, || rtree_scan.local_densities(&data, &rtree)));

    // Seed reference: the one-point-per-node arena tree (single-threaded loop,
    // same as the packed kernel below at threads = 1).
    let arena = IncrementalKdTree::build(&data);
    records.push(bench_record("exdpc_arena_kdtree", n, d, 5, || {
        (0..data.len())
            .map(|i| {
                let count = arena.range_count(data.point(i), params.dcut, Some(i));
                jittered_density(count, i, params.jitter_seed)
            })
            .collect::<Vec<f64>>()
    }));

    let exdpc = ExDpc::new(params);
    let kdtree = KdTree::build(&data);
    records.push(bench_record("exdpc_packed_kdtree", n, d, 5, || {
        exdpc.local_densities(&data, &kdtree)
    }));

    let mean_of = |name: &str| {
        records.iter().find(|r| r.kernel == name).map(|r| r.mean_secs).unwrap_or(f64::NAN)
    };
    println!();
    println!(
        "ρ-phase speedup vs arena (mean): {:.2}x",
        mean_of("exdpc_arena_kdtree") / mean_of("exdpc_packed_kdtree")
    );
    println!(
        "parallel build speedup ({} threads, mean): {:.2}x",
        threads,
        mean_of("build") / mean_of("build_parallel")
    );

    write_bench_json(&out, "local_density", &records).expect("write BENCH json");
    println!("wrote {}", out.display());
    if check {
        check_or_exit(&out, "local_density", required::LOCAL_DENSITY);
    }
}

//! Benchmark of the local-density (ρ) kernels across algorithms: the full
//! linear scan, the R-tree, the seed's arena kd-tree, the packed
//! leaf-bucketed kd-tree's per-point loop, and the batched cell-clustered
//! query engine that Ex-DPC now defaults to (`dpc_index::batchq`; serial and
//! fan-out parallel) — plus the index construction itself (serial and
//! fork-join parallel), which is the fixed cost every index-based variant
//! pays before any ρ work.
//!
//! Index construction is accounted separately from query work on both sides:
//! the per-point kernel runs against a prebuilt kd-tree (construction in the
//! `build*` kernels), and the batched kernels run against the same prebuilt
//! tree plus a prebuilt grid (construction in the `build_grid` kernel) — each
//! batched timing covers bucket formation, the joint traversals, and the
//! jittered scatter. A second `_xl` tier (default one million points) records
//! the same ρ kernels at a scale where traversal sharing, not constant
//! factors, dominates.
//!
//! Results are written to `BENCH_local_density.json` (schema in
//! `crates/bench/README.md`) so the ρ-phase trajectory is recorded PR over PR.
//!
//! Flags: `--n <points>` (default 100,000), `--xl-n <points>` (default
//! 1,000,000; the `_xl` tier), `--threads <T>` (default: available hardware
//! parallelism; used by the parallel-build and `rho_batched_parallel`
//! kernels — the remaining ρ kernels run single-threaded so the trajectory
//! measures the kernels, not the scheduler), `--out <json>` (default
//! `BENCH_local_density.json`), `--check` (validate the emitted JSON and exit
//! non-zero on schema drift).

use dpc_baselines::{RtreeScan, Scan};
use dpc_bench::micro::{bench_record, write_bench_json, BenchRecord};
use dpc_bench::resolve_out_path;
use dpc_bench::schema::{check_or_exit, required};
use dpc_bench::{default_params, BenchDataset};
use dpc_core::framework::jittered_density;
use dpc_core::ExDpc;
use dpc_index::{Grid, IncrementalKdTree, KdTree, RTree};
use dpc_parallel::Executor;

/// The quadratic scan baseline is only timed up to this cardinality; above it
/// one iteration would dominate the whole bench run.
const SCAN_MAX_N: usize = 20_000;

/// The three ρ kernels of the `_xl` tier: the per-point packed-tree loop and
/// the batched engine at 1 and `threads` workers. Two repetitions — the tier
/// exists to record the large-`n` shape, not tight variance.
fn xl_tier(xl_n: usize, threads: usize, records: &mut Vec<BenchRecord>) {
    let dataset = BenchDataset::Syn;
    let data = dataset.generate(xl_n);
    let d = data.dim();
    let executor = Executor::new(threads);
    let kdtree = KdTree::build_parallel(&data, &executor);
    let params = default_params(&dataset, 1);
    let grid = Grid::build_parallel(&data, params.dcut / (d as f64).sqrt(), &executor);
    let exdpc_serial = ExDpc::new(params);
    let exdpc_parallel = ExDpc::new(default_params(&dataset, threads));
    records.push(bench_record("exdpc_packed_kdtree_xl", xl_n, d, 2, || {
        exdpc_serial.local_densities_per_point(&data, &kdtree)
    }));
    records.push(bench_record("rho_batched_serial_xl", xl_n, d, 2, || {
        exdpc_serial.local_densities_with_grid(&data, &kdtree, &grid)
    }));
    records.push(bench_record("rho_batched_parallel_xl", xl_n, d, 2, || {
        exdpc_parallel.local_densities_with_grid(&data, &kdtree, &grid)
    }));
}

fn main() {
    let mut n = 100_000usize;
    let mut xl_n = 1_000_000usize;
    let mut threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut out = resolve_out_path("BENCH_local_density.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => n = args.next().expect("--n requires a value").parse().expect("--n <points>"),
            "--xl-n" => {
                xl_n =
                    args.next().expect("--xl-n requires a value").parse().expect("--xl-n <points>")
            }
            "--threads" => {
                threads =
                    args.next().expect("--threads requires a value").parse().expect("--threads <T>")
            }
            "--out" => out = resolve_out_path(&args.next().expect("--out requires a path")),
            "--check" => check = true,
            "--bench" => {} // appended by `cargo bench`
            other => panic!(
                "unknown argument: {other} (flags: --n <points> --xl-n <points> --threads <T> --out <json> --check)"
            ),
        }
    }

    let dataset = BenchDataset::Syn;
    let data = dataset.generate(n);
    let d = data.dim();
    let params = default_params(&dataset, 1);
    let executor = Executor::new(threads);
    println!("local_density ({} n = {n}, threads = {threads})", dataset.name());

    let mut records: Vec<BenchRecord> = Vec::new();

    // Index construction: the fixed cost before any ρ work.
    records.push(bench_record("build", n, d, 5, || KdTree::build(&data).len()));
    records.push(bench_record("build_parallel", n, d, 5, || {
        KdTree::build_parallel(&data, &executor).len()
    }));
    records.push(bench_record("build_arena", n, d, 5, || IncrementalKdTree::build(&data).len()));

    if n <= SCAN_MAX_N {
        let scan = Scan::new(params);
        records.push(bench_record("scan", n, d, 5, || scan.local_densities(&data)));
    } else {
        println!("scan{:>38} O(n²) baseline skipped at n = {n} (> {SCAN_MAX_N})", "");
    }

    let rtree_scan = RtreeScan::new(params);
    let rtree = RTree::build(&data);
    records.push(bench_record("rtree", n, d, 5, || rtree_scan.local_densities(&data, &rtree)));

    // Seed reference: the one-point-per-node arena tree (single-threaded loop,
    // same as the packed kernel below at threads = 1).
    let arena = IncrementalKdTree::build(&data);
    records.push(bench_record("exdpc_arena_kdtree", n, d, 5, || {
        (0..data.len())
            .map(|i| {
                let count = arena.range_count(data.point(i), params.dcut, Some(i));
                jittered_density(count, i, params.jitter_seed)
            })
            .collect::<Vec<f64>>()
    }));

    let exdpc = ExDpc::new(params);
    let kdtree = KdTree::build(&data);
    records.push(bench_record("exdpc_packed_kdtree", n, d, 5, || {
        exdpc.local_densities_per_point(&data, &kdtree)
    }));

    // The grid the batched engine buckets queries by: its construction is the
    // batched path's analogue of the `build*` kernels above.
    let side = params.dcut / (d as f64).sqrt();
    records.push(bench_record("build_grid", n, d, 5, || {
        Grid::build_parallel(&data, side, &executor).num_cells()
    }));
    let grid = Grid::build_parallel(&data, side, &executor);

    // The batched default (one joint traversal per cell bucket), serial and
    // fanned out, against the prebuilt tree and grid; timings cover bucket
    // formation, the joint traversals, and the jittered scatter.
    records.push(bench_record("rho_batched_serial", n, d, 5, || {
        exdpc.local_densities_with_grid(&data, &kdtree, &grid)
    }));
    let exdpc_parallel = ExDpc::new(default_params(&dataset, threads));
    records.push(bench_record("rho_batched_parallel", n, d, 5, || {
        exdpc_parallel.local_densities_with_grid(&data, &kdtree, &grid)
    }));

    xl_tier(xl_n, threads, &mut records);

    let mean_of = |name: &str| {
        records.iter().find(|r| r.kernel == name).map(|r| r.mean_secs).unwrap_or(f64::NAN)
    };
    println!();
    println!(
        "ρ-phase speedup vs arena (mean): {:.2}x",
        mean_of("exdpc_arena_kdtree") / mean_of("exdpc_packed_kdtree")
    );
    println!(
        "batched ρ speedup vs per-point (serial, mean): {:.2}x",
        mean_of("exdpc_packed_kdtree") / mean_of("rho_batched_serial")
    );
    println!(
        "batched ρ speedup vs per-point ({} threads, mean): {:.2}x",
        threads,
        mean_of("exdpc_packed_kdtree") / mean_of("rho_batched_parallel")
    );
    println!(
        "batched ρ speedup vs per-point at n = {} (serial, mean): {:.2}x",
        xl_n,
        mean_of("exdpc_packed_kdtree_xl") / mean_of("rho_batched_serial_xl")
    );
    println!(
        "parallel build speedup ({} threads, mean): {:.2}x",
        threads,
        mean_of("build") / mean_of("build_parallel")
    );

    write_bench_json(&out, "local_density", &records).expect("write BENCH json");
    println!("wrote {}", out.display());
    if check {
        check_or_exit(&out, "local_density", required::LOCAL_DENSITY);
    }
}

//! Benchmark of the local-density (ρ) kernels across algorithms: the full
//! linear scan, the R-tree, the seed's arena kd-tree, and the packed
//! leaf-bucketed kd-tree that Ex-DPC now uses.

use dpc_baselines::{RtreeScan, Scan};
use dpc_bench::micro::bench;
use dpc_bench::{default_params, BenchDataset};
use dpc_core::framework::jittered_density;
use dpc_core::ExDpc;
use dpc_index::{IncrementalKdTree, KdTree, RTree};

const N: usize = 8_000;

fn main() {
    let dataset = BenchDataset::Syn;
    let data = dataset.generate(N);
    let params = default_params(&dataset, 1);
    println!("local_density ({} n = {N})", dataset.name());

    let scan = Scan::new(params);
    bench("scan", 5, || scan.local_densities(&data));

    let rtree_scan = RtreeScan::new(params);
    let rtree = RTree::build(&data);
    bench("rtree", 5, || rtree_scan.local_densities(&data, &rtree));

    // Seed reference: the one-point-per-node arena tree (single-threaded loop,
    // same as the packed kernel below at threads = 1).
    let arena = IncrementalKdTree::build(&data);
    bench("exdpc_arena_kdtree", 5, || {
        (0..data.len())
            .map(|i| {
                let count = arena.range_count(data.point(i), params.dcut, Some(i));
                jittered_density(count, i, params.jitter_seed)
            })
            .collect::<Vec<f64>>()
    });

    let exdpc = ExDpc::new(params);
    let kdtree = KdTree::build(&data);
    bench("exdpc_packed_kdtree", 5, || exdpc.local_densities(&data, &kdtree));
}

//! Sustained-ingest benchmark for the streaming maintenance engine: absorb a
//! drifting point stream through a sliding window (`StreamingDpc`) versus the
//! strategy it replaces — refitting the whole window from scratch every batch
//! of arrivals.
//!
//! Results are written to `BENCH_ingest.json` (schema in
//! `crates/bench/README.md`) so the streaming trajectory is recorded PR over
//! PR. The streamed state is bitwise-equal to a fresh keyed fit of the
//! surviving window (the `tests/streaming.rs` property), so the two
//! strategies buy the *same* model — the benchmark measures only how much of
//! the window each one has to touch per batch: the refit reprocesses all `n`
//! points, the stream repairs the `d_cut` neighbourhoods of the `batch`
//! arrivals and the `batch` expiries.
//!
//! Flags: `--n <window>` (default 20,000 — the sliding-window capacity, and
//! the refit baseline's dataset size), `--batch <points>` (default 250 —
//! arrivals absorbed per measured iteration, and the window's expiry batch;
//! the refit baseline's cost is batch-invariant, so the batch size sets the
//! freshness/throughput trade: smaller batches mean fresher models, which
//! streaming serves at per-arrival cost while the refit strategy pays the
//! whole window again), `--threads <T>` (default 1; the refit baseline's
//! executor — the write
//! path is serialized by design, so a single-threaded baseline is the
//! apples-to-apples comparison and `--threads` exists to show the refit's
//! parallel headroom), `--out <json>`, `--check` (validate the emitted JSON
//! against the schema and exit non-zero on drift).
//!
//! Workload: a drifting 2-d Gaussian band (constant spatial density, so the
//! `d_cut` ball size — and with it the repair cost — stays flat as the
//! stream advances; by one window length the content has fully turned over).

use dpc_bench::micro::{bench_record, write_bench_json, BenchRecord};
use dpc_bench::resolve_out_path;
use dpc_bench::schema::{check_or_exit, required};
use dpc_core::{DpcAlgorithm, DpcParams, ExDpc, StreamingDpc};

/// Cutoff distance; with the stream's density of ~2.5 points per unit², the
/// mean `d_cut` ball holds ~8 points — the localized-repair regime.
const DCUT: f64 = 1.0;
/// Drift per arrival: a 20k window spans 400 length units.
const DRIFT: f64 = 0.02;
/// Vertical spread of the band.
const SPREAD: f64 = 20.0;

/// One splitmix64 draw in `[0, 1)` — the bench's only randomness (the bench
/// crate deliberately has no RNG dependency).
fn unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The `i`-th stream point: a band drifting right at constant density.
fn stream_point(i: u64) -> [f64; 2] {
    let mut state = i.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x5EED;
    [i as f64 * DRIFT + (unit(&mut state) - 0.5) * SPREAD * 0.25, (unit(&mut state) - 0.5) * SPREAD]
}

fn main() {
    let mut n = 20_000usize;
    let mut batch = 250usize;
    let mut threads = 1usize;
    let mut out = resolve_out_path("BENCH_ingest.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => n = args.next().expect("--n requires a value").parse().expect("--n <window>"),
            "--batch" => {
                batch =
                    args.next().expect("--batch requires a value").parse().expect("--batch <points>")
            }
            "--threads" => {
                threads =
                    args.next().expect("--threads requires a value").parse().expect("--threads <T>")
            }
            "--out" => out = resolve_out_path(&args.next().expect("--out requires a path")),
            "--check" => check = true,
            "--bench" => {} // appended by `cargo bench`
            other => panic!(
                "unknown argument: {other} (flags: --n <window> --batch <points> --threads <T> --out <json> --check)"
            ),
        }
    }
    assert!(batch >= 1 && n >= batch, "need --n ≥ --batch ≥ 1");
    let params = DpcParams::new(DCUT);
    let mut records: Vec<BenchRecord> = Vec::new();
    println!("ingest (window n = {n}, batch = {batch}, d_cut = {DCUT}, refit threads = {threads})");

    // Prefill the sliding window to capacity plus a quarter turnover, so the
    // measured iterations run in steady state (expiry batches and index
    // maintenance cycles active, not the one-off fill transient).
    let mut engine = StreamingDpc::new(params, 2).expect("valid params").with_window(n, batch);
    let mut next = 0u64;
    for _ in 0..n + n / 4 {
        engine.insert(&stream_point(next)).expect("finite stream point");
        next += 1;
    }
    engine.drain_expired();

    // The refit baseline fits exactly the prefilled window — the same points
    // the first measured streaming iteration starts from.
    let (window, _ids, _model) = engine.to_parts().expect("non-empty window");

    records.push(bench_record("ingest_sustained", n, 2, 8, || {
        for _ in 0..batch {
            engine.insert(&stream_point(next)).expect("finite stream point");
            next += 1;
        }
        engine.drain_expired().len()
    }));

    // Churn without a window: explicit removals race the inserts (the
    // delete-repair path), half a batch of each per iteration.
    let mut churn = StreamingDpc::new(params, 2).expect("valid params");
    let mut live: Vec<u64> = Vec::new();
    let mut churn_next = 0u64;
    for _ in 0..n {
        live.push(churn.insert(&stream_point(churn_next)).expect("finite stream point"));
        churn_next += 1;
    }
    let mut victim = 0x1234_5678u64;
    records.push(bench_record("ingest_churn", n, 2, 8, || {
        for _ in 0..batch / 2 {
            live.push(churn.insert(&stream_point(churn_next)).expect("finite stream point"));
            churn_next += 1;
            let k = (unit(&mut victim) * live.len() as f64) as usize % live.len();
            let id = live.swap_remove(k);
            assert!(churn.remove(id));
        }
        churn.len()
    }));

    // The strategy streaming replaces: refit the whole window every batch.
    let refit_params = params.with_threads(threads);
    records.push(bench_record("refit_per_window", n, 2, 3, || {
        ExDpc::new(refit_params).fit(&window).expect("refit").n()
    }));

    let mean_of = |name: &str| {
        records.iter().find(|r| r.kernel == name).map(|r| r.mean_secs).unwrap_or(f64::NAN)
    };
    let stream_batch = mean_of("ingest_sustained");
    let refit = mean_of("refit_per_window");
    println!();
    println!(
        "sustained ingest: {:.0} points/sec (streaming) vs {:.0} points/sec (refit-per-window) — {:.2}x",
        batch as f64 / stream_batch,
        batch as f64 / refit,
        refit / stream_batch
    );

    write_bench_json(&out, "ingest", &records).expect("write BENCH json");
    println!("wrote {}", out.display());
    if check {
        check_or_exit(&out, "ingest", required::INGEST);
    }
}

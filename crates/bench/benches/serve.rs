//! Serving-layer benchmark: requests/sec and tail latency of a `DpcServer`
//! under concurrent load with background refit-and-swap churn.
//!
//! Three workloads — relabel-heavy (threshold sweeps via `extract`),
//! assign-heavy (point classification on the snapshot kd-tree) and mixed —
//! each run at 1, 4 and 8 worker threads while a writer thread continuously
//! refits the model and installs fresh epochs, so every number includes the
//! cost of real snapshot churn. Per workload × worker count three kernels are
//! recorded: the batch wall-clock (`serve_<w>_t<T>`, min/mean over
//! repetitions — requests/sec is `requests / mean`), and the nearest-rank
//! p50/p99 per-request latencies (`serve_<w>_t<T>_p50` / `_p99`, one value
//! over all repetitions' samples, stored as `min = mean`).
//!
//! A fourth, *fault-injected* section re-runs the mixed workload against a
//! server with a deterministic fault plan armed (10% slow requests against a
//! 2 ms deadline, fit failures/panics against the supervised background
//! refit) and a tight admission cap, recording degraded-mode throughput and
//! tails (`serve_faulty_mixed_t<T>` + `_p50`/`_p99`) plus three dimensionless
//! rate kernels (`serve_faulty_shed_rate`, `serve_faulty_timeout_rate`,
//! `serve_faulty_degraded_rate`, stored as `min = mean`) — the healthy
//! numbers' price-of-robustness counterpart.
//!
//! Results go to `BENCH_serve.json` (schema in `crates/bench/README.md`).
//!
//! Flags: `--n <points>` (default 20,000), `--requests <R>` per batch
//! (default 1,500), `--threads <T>` (default: available parallelism; sizes
//! only the background *refit* executor — the serving worker counts {1, 4, 8}
//! are part of the kernel identity and never change), `--out <json>` (default
//! `BENCH_serve.json`, resolved against the workspace root), `--check`
//! (validate the emitted JSON and exit non-zero on schema drift).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpc_bench::micro::{write_bench_json, BenchRecord};
use dpc_bench::resolve_out_path;
use dpc_bench::schema::{check_or_exit, required};
use dpc_bench::stats::{percentile, sorted_samples};
use dpc_bench::{default_params, default_thresholds, BenchDataset};
use dpc_core::{DpcParams, ExDpc, Thresholds};
use dpc_geometry::Dataset;
use dpc_parallel::Executor;
use dpc_serve::{
    DpcServer, FaultInjector, FaultPlan, FaultPoint, FaultyAlgorithm, RefitPolicy, Request,
    ServeConfig, ServeError,
};

/// Serving worker counts — baked into the kernel labels, independent of
/// `--threads`.
const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

/// Timed repetitions per workload × worker count.
const REPS: usize = 3;

/// Workload shapes: request-kind mix per 10 requests.
const WORKLOADS: [(&str, usize, usize); 3] = [
    // (label, relabels per 10, assigns per 10) — the remainder is Stats.
    ("relabel_heavy", 8, 1),
    ("assign_heavy", 1, 8),
    ("mixed", 4, 4),
];

/// Tiny deterministic generator (splitmix64) for request mixing — the bench
/// must produce the identical request stream on every run and platform.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds one workload's deterministic request stream: `relabel_w` /
/// `assign_w` / remainder-Stats per 10 requests, interleaved. Relabels sweep
/// `δ_min` around the default; assigns perturb points drawn from the dataset
/// by up to half a `d_cut`, so most queries land inside a cluster and some
/// fall into the sparse in-between.
fn build_requests(
    label: &str,
    count: usize,
    data: &Dataset,
    params: &DpcParams,
    thresholds: &Thresholds,
    relabel_w: usize,
    assign_w: usize,
) -> Vec<Request> {
    let mut rng = SplitMix(0xd1ce ^ label.len() as u64);
    (0..count)
        .map(|i| match i % 10 {
            slot if slot < relabel_w => {
                let delta_min = thresholds.delta_min * (0.5 + rng.unit());
                let rho_min = thresholds.rho_min * rng.unit();
                Request::Relabel(Thresholds::new(rho_min, delta_min).expect("in-domain sweep"))
            }
            slot if slot < relabel_w + assign_w => {
                let base = data.point((rng.next() % data.len() as u64) as usize);
                let point =
                    base.iter().map(|c| c + (rng.unit() - 0.5) * params.dcut).collect::<Vec<f64>>();
                Request::Assign(point)
            }
            _ => Request::Stats,
        })
        .collect()
}

fn main() {
    let mut n = 20_000usize;
    let mut requests_per_batch = 1_500usize;
    let mut threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut out = resolve_out_path("BENCH_serve.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => n = args.next().expect("--n requires a value").parse().expect("--n <points>"),
            "--requests" => {
                requests_per_batch = args
                    .next()
                    .expect("--requests requires a value")
                    .parse()
                    .expect("--requests <R>")
            }
            "--threads" => {
                threads =
                    args.next().expect("--threads requires a value").parse().expect("--threads <T>")
            }
            "--out" => out = resolve_out_path(&args.next().expect("--out requires a path")),
            "--check" => check = true,
            "--bench" => {} // appended by `cargo bench`
            other => panic!(
                "unknown argument: {other} (flags: --n <points> --requests <R> --threads <T> --out <json> --check)"
            ),
        }
    }

    let dataset = BenchDataset::Syn;
    let data = dataset.generate(n);
    let d = data.dim();
    let params = default_params(&dataset, threads);
    let thresholds = default_thresholds(params.dcut);
    let refit_executor = Executor::new(threads);
    println!(
        "serve ({} n = {n}, requests/batch = {requests_per_batch}, refit threads = {threads})",
        dataset.name()
    );

    let server = DpcServer::fit(&ExDpc::new(params), data.clone(), thresholds, &refit_executor)
        .expect("initial fit");

    let mut records: Vec<BenchRecord> = Vec::new();
    for (label, relabel_w, assign_w) in WORKLOADS {
        let requests = build_requests(
            label,
            requests_per_batch,
            &data,
            &params,
            &thresholds,
            relabel_w,
            assign_w,
        );
        for workers in WORKER_COUNTS {
            let pool = Executor::new(workers);
            let mut batch_walls = Vec::with_capacity(REPS);
            let mut latencies: Vec<f64> = Vec::with_capacity(REPS * requests_per_batch);
            let stop = AtomicBool::new(false);
            let refits = AtomicU64::new(0);

            // The swap writer churns epochs for the whole measurement of this
            // (workload, workers) cell: fit outside the store lock, install
            // atomically, repeat until the readers are done.
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        server
                            .store()
                            .refit(&ExDpc::new(params), data.clone(), thresholds, &refit_executor)
                            .expect("refit");
                        refits.fetch_add(1, Ordering::Relaxed);
                    }
                });

                // Warm-up pass (untimed), then the timed repetitions.
                for timed in [false, true, true, true] {
                    let start = Instant::now();
                    let per_worker: Vec<Vec<f64>> = pool.map_chunks(requests.len(), |range| {
                        let mut worker_lat = Vec::with_capacity(range.len());
                        for i in range {
                            let t0 = Instant::now();
                            let response =
                                server.handle(&requests[i]).expect("well-formed request");
                            worker_lat.push(t0.elapsed().as_secs_f64());
                            assert!(response.epoch() >= 1, "torn epoch");
                        }
                        worker_lat
                    });
                    if timed {
                        batch_walls.push(start.elapsed().as_secs_f64());
                        latencies.extend(per_worker.into_iter().flatten());
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });

            let min_wall = batch_walls.iter().cloned().fold(f64::INFINITY, f64::min);
            let mean_wall = batch_walls.iter().sum::<f64>() / batch_walls.len() as f64;
            let sorted = sorted_samples(latencies);
            let p50 = percentile(&sorted, 50.0);
            let p99 = percentile(&sorted, 99.0);
            println!(
                "{label:<14} t{workers}: {:>9.1} req/s  p50 {:>9.1}µs  p99 {:>9.1}µs  ({} refits, epoch {})",
                requests_per_batch as f64 / mean_wall,
                p50 * 1e6,
                p99 * 1e6,
                refits.load(Ordering::Relaxed),
                server.epoch(),
            );
            records.push(BenchRecord {
                kernel: format!("serve_{label}_t{workers}"),
                n,
                d,
                iters: REPS,
                min_secs: min_wall,
                mean_secs: mean_wall,
            });
            for (suffix, value) in [("p50", p50), ("p99", p99)] {
                records.push(BenchRecord {
                    kernel: format!("serve_{label}_t{workers}_{suffix}"),
                    n,
                    d,
                    iters: sorted.len(),
                    min_secs: value,
                    mean_secs: value,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault-injected serving: the identical mixed request stream, but the
    // server now has a deterministic fault plan armed, a 2 ms per-request
    // deadline and an admission cap of 2 in-flight requests, and the writer
    // refits through the supervisor with a flaky algorithm. The throughput
    // and tail kernels price the degraded mode; the rate kernels record how
    // often the robustness machinery actually engaged (shed at the cap,
    // timed out against the deadline, refit round exhausted) over every
    // request of the section, warm-up passes included.
    // ------------------------------------------------------------------
    const FAULT_SEED: u64 = 0xFA01_7BE7;
    // Injected fit panics are expected and caught by the supervisor; keep
    // them from spraying backtraces over the bench output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.starts_with("injected"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
    let faults = FaultInjector::shared(
        FaultPlan::new(FAULT_SEED)
            .with_rate(FaultPoint::SlowRequest, 0.10)
            .with_slow_request(Duration::from_millis(5))
            .with_rate(FaultPoint::FitError, 0.30)
            .with_rate(FaultPoint::FitPanic, 0.10),
    );
    let faulty_server =
        DpcServer::fit(&ExDpc::new(params), data.clone(), thresholds, &refit_executor)
            .expect("faulty-section fit")
            .with_config(
                ServeConfig::default()
                    .with_deadline(Duration::from_millis(2))
                    .with_max_in_flight(2),
            )
            .with_faults(Arc::clone(&faults));
    let flaky = FaultyAlgorithm::new(ExDpc::new(params), Arc::clone(&faults));
    let policy = RefitPolicy::default()
        .with_max_attempts(2)
        .with_backoff(Duration::from_millis(1), Duration::from_millis(8))
        .with_backoff_seed(FAULT_SEED);
    let requests = build_requests("mixed", requests_per_batch, &data, &params, &thresholds, 4, 4);
    let rounds = AtomicU64::new(0);
    let exhausted = AtomicU64::new(0);
    for workers in WORKER_COUNTS {
        let pool = Executor::new(workers);
        let mut batch_walls = Vec::with_capacity(REPS);
        let mut latencies: Vec<f64> = Vec::with_capacity(REPS * requests_per_batch);
        let before = faulty_server.counters();
        let stop = AtomicBool::new(false);

        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    rounds.fetch_add(1, Ordering::Relaxed);
                    // A supervised round either installs a fresh epoch or
                    // exhausts its retries and leaves the last good epoch
                    // serving — both are expected under the storm.
                    if faulty_server
                        .store()
                        .refit_supervised(
                            &flaky,
                            data.clone(),
                            thresholds,
                            &refit_executor,
                            &policy,
                        )
                        .is_err()
                    {
                        exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });

            for timed in [false, true, true, true] {
                let start = Instant::now();
                let per_worker: Vec<Vec<f64>> = pool.map_chunks(requests.len(), |range| {
                    let mut worker_lat = Vec::with_capacity(range.len());
                    for i in range {
                        let t0 = Instant::now();
                        match faulty_server.handle(&requests[i]) {
                            Ok(response) => assert!(response.epoch() >= 1, "torn epoch"),
                            // The two degraded-mode outcomes the section is
                            // here to measure; anything else is a bug.
                            Err(ServeError::Overloaded { .. })
                            | Err(ServeError::DeadlineExceeded { .. }) => {}
                            Err(other) => panic!("unexpected serve error: {other}"),
                        }
                        worker_lat.push(t0.elapsed().as_secs_f64());
                    }
                    worker_lat
                });
                if timed {
                    batch_walls.push(start.elapsed().as_secs_f64());
                    latencies.extend(per_worker.into_iter().flatten());
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        let delta = faulty_server.counters();
        let (admitted, shed, timed_out) = (
            delta.admitted - before.admitted,
            delta.shed - before.shed,
            delta.timed_out - before.timed_out,
        );
        let min_wall = batch_walls.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean_wall = batch_walls.iter().sum::<f64>() / batch_walls.len() as f64;
        let sorted = sorted_samples(latencies);
        let p50 = percentile(&sorted, 50.0);
        let p99 = percentile(&sorted, 99.0);
        println!(
            "faulty mixed   t{workers}: {:>9.1} req/s  p50 {:>9.1}µs  p99 {:>9.1}µs  (admitted {admitted}, shed {shed}, timed out {timed_out})",
            requests_per_batch as f64 / mean_wall,
            p50 * 1e6,
            p99 * 1e6,
        );
        records.push(BenchRecord {
            kernel: format!("serve_faulty_mixed_t{workers}"),
            n,
            d,
            iters: REPS,
            min_secs: min_wall,
            mean_secs: mean_wall,
        });
        for (suffix, value) in [("p50", p50), ("p99", p99)] {
            records.push(BenchRecord {
                kernel: format!("serve_faulty_mixed_t{workers}_{suffix}"),
                n,
                d,
                iters: sorted.len(),
                min_secs: value,
                mean_secs: value,
            });
        }
    }

    // The rate kernels aggregate the whole faulty section. They are
    // dimensionless fractions in [0, 1] stored as `min = mean`; `iters`
    // carries the denominator (attempts, admissions, refit rounds).
    let totals = faulty_server.counters();
    let attempts = totals.admitted + totals.shed;
    let rounds = rounds.load(Ordering::Relaxed);
    let exhausted = exhausted.load(Ordering::Relaxed);
    println!(
        "faulty rates  : shed {}/{attempts}, timed out {}/{}, exhausted refit rounds {exhausted}/{rounds}",
        totals.shed, totals.timed_out, totals.admitted,
    );
    for (kernel, numerator, denominator) in [
        ("serve_faulty_shed_rate", totals.shed, attempts),
        ("serve_faulty_timeout_rate", totals.timed_out, totals.admitted),
        ("serve_faulty_degraded_rate", exhausted, rounds),
    ] {
        let rate = if denominator == 0 { 0.0 } else { numerator as f64 / denominator as f64 };
        records.push(BenchRecord {
            kernel: kernel.to_string(),
            n,
            d,
            iters: (denominator as usize).max(1),
            min_secs: rate,
            mean_secs: rate,
        });
    }

    write_bench_json(&out, "serve", &records).expect("write BENCH json");
    println!("wrote {}", out.display());
    if check {
        check_or_exit(&out, "serve", required::SERVE);
    }
}

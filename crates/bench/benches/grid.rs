//! Microbenchmarks for the uniform grid: construction and the joint range
//! search of Approx-DPC (one kd-tree query per cell) versus per-point range
//! searches (Ex-DPC style).

use dpc_bench::micro::bench;
use dpc_data::generators::random_walk;
use dpc_geometry::dist;
use dpc_index::{Grid, KdTree};

const N: usize = 20_000;
const DCUT: f64 = 250.0;

fn main() {
    let data = random_walk(N, 13, 1e5, 3);
    let side = DCUT / (data.dim() as f64).sqrt();
    println!("grid (n = {N}, d_cut = {DCUT})");

    bench("build_20k", 10, || Grid::build(&data, side).num_cells());

    let tree = KdTree::build(&data);
    let grid = Grid::build(&data, side);

    bench("per_point_range_searches", 5, || {
        let mut total = 0usize;
        for (i, p) in data.iter() {
            total += tree.range_count(p, DCUT, Some(i));
        }
        total
    });

    bench("joint_range_search_per_cell", 5, || {
        let mut total = 0usize;
        let mut buffer = Vec::new();
        for cell in grid.cell_ids() {
            let center = grid.center(cell);
            let extra = grid
                .points(cell)
                .iter()
                .map(|&p| dist(&center, data.point(p)))
                .fold(0.0f64, f64::max);
            tree.range_search_into(&center, DCUT + extra, &mut buffer);
            total += buffer.len();
        }
        total
    });
}

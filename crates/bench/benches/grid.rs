//! Criterion microbenchmarks for the uniform grid: construction and the joint
//! range search of Approx-DPC (one kd-tree query per cell) versus per-point
//! range searches (Ex-DPC style).

use criterion::{criterion_group, criterion_main, Criterion};
use dpc_data::generators::random_walk;
use dpc_geometry::dist;
use dpc_index::{Grid, KdTree};
use std::hint::black_box;

const N: usize = 20_000;
const DCUT: f64 = 250.0;

fn bench_grid(c: &mut Criterion) {
    let data = random_walk(N, 13, 1e5, 3);
    let side = DCUT / (data.dim() as f64).sqrt();
    let mut group = c.benchmark_group("grid");
    group.sample_size(10);

    group.bench_function("build_20k", |b| {
        b.iter(|| black_box(Grid::build(&data, side)).num_cells())
    });

    let tree = KdTree::build(&data);
    let grid = Grid::build(&data, side);

    group.bench_function("per_point_range_searches", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (i, p) in data.iter() {
                total += tree.range_count(p, DCUT, Some(i));
            }
            black_box(total)
        })
    });

    group.bench_function("joint_range_search_per_cell", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut buffer = Vec::new();
            for cell in grid.cell_ids() {
                let center = grid.center(cell);
                let extra = grid
                    .points(cell)
                    .iter()
                    .map(|&p| dist(&center, data.point(p)))
                    .fold(0.0f64, f64::max);
                tree.range_search_into(&center, DCUT + extra, &mut buffer);
                total += buffer.len();
            }
            black_box(total)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);

//! End-to-end benchmark: every algorithm on the Syn dataset. The harness
//! binaries in `src/bin` cover the paper-scale sweeps; this bench is the
//! regression guard for the relative ordering (who is faster than whom), and
//! it also records the fit-vs-extract asymmetry the model API is built on and
//! the index build cost the full pipelines sit on top of.
//!
//! Results are written to `BENCH_e2e.json` (schema in
//! `crates/bench/README.md`) so the end-to-end trajectory is recorded PR over
//! PR.
//!
//! Flags: `--n <points>` (default 100,000), `--threads <T>` (default:
//! available hardware parallelism; used by the parallel-build kernel — the
//! algorithm kernels run single-threaded so the trajectory measures the
//! pipelines, not the scheduler), `--out <json>` (default `BENCH_e2e.json`),
//! `--check` (validate the emitted JSON and exit non-zero on schema drift).

use dpc_bench::micro::{bench_record, write_bench_json, BenchRecord};
use dpc_bench::resolve_out_path;
use dpc_bench::schema::{check_or_exit, required};
use dpc_bench::{default_params, default_thresholds, Algo, BenchDataset};
use dpc_index::KdTree;
use dpc_parallel::Executor;

/// The quadratic baselines (Scan's ρ phase, R-tree + Scan's and CFSFDP-A's
/// dependent phases) are only timed up to this cardinality.
const QUADRATIC_MAX_N: usize = 20_000;

/// A kernel label from an algorithm display name: lowercase, with every
/// non-alphanumeric run collapsed to one `_` (`"R-tree + Scan"` →
/// `"r_tree_scan"`).
fn kernel_label(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

fn main() {
    let mut n = 100_000usize;
    let mut threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut out = resolve_out_path("BENCH_e2e.json");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => n = args.next().expect("--n requires a value").parse().expect("--n <points>"),
            "--threads" => {
                threads =
                    args.next().expect("--threads requires a value").parse().expect("--threads <T>")
            }
            "--out" => out = resolve_out_path(&args.next().expect("--out requires a path")),
            "--check" => check = true,
            "--bench" => {} // appended by `cargo bench`
            other => panic!(
                "unknown argument: {other} (flags: --n <points> --threads <T> --out <json> --check)"
            ),
        }
    }

    let dataset = BenchDataset::Syn;
    let data = dataset.generate(n);
    let d = data.dim();
    let params = default_params(&dataset, 1);
    let thresholds = default_thresholds(params.dcut);
    let executor = Executor::new(threads);
    println!("end_to_end ({} n = {n}, threads = {threads})", dataset.name());

    let mut records: Vec<BenchRecord> = Vec::new();

    // The index build every kd-tree pipeline starts with, serial vs fork-join.
    records.push(bench_record("build", n, d, 5, || KdTree::build(&data).len()));
    records.push(bench_record("build_parallel", n, d, 5, || {
        KdTree::build_parallel(&data, &executor).len()
    }));

    let epsilon = 0.8;
    let algos = if n <= QUADRATIC_MAX_N { Algo::all(epsilon) } else { Algo::fast_only(epsilon) };
    if algos.len() < Algo::all(epsilon).len() {
        let dropped: Vec<String> =
            Algo::all(epsilon).iter().filter(|a| !algos.contains(a)).map(|a| a.name()).collect();
        println!("skipping quadratic baselines at n = {n} (> {QUADRATIC_MAX_N}): {dropped:?}");
    }
    for algo in algos {
        let label = format!("fit_extract_{}", kernel_label(&algo.name()));
        records.push(bench_record(&label, n, d, 3, || {
            algo.run(&data, params, &thresholds).expect("run").num_clusters()
        }));
    }

    // The point of the fit/extract split: re-thresholding a fitted model is
    // orders of magnitude cheaper than any full run above.
    let model = Algo::ApproxDpc.fit(&data, params).expect("fit");
    records
        .push(bench_record("extract_only", n, d, 50, || model.extract(&thresholds).num_clusters()));

    write_bench_json(&out, "end_to_end", &records).expect("write BENCH json");
    println!("wrote {}", out.display());
    if check {
        check_or_exit(&out, "end_to_end", required::END_TO_END);
    }
}

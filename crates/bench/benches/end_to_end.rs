//! Criterion end-to-end benchmark: every algorithm on a small Syn dataset.
//! The harness binaries in `src/bin` cover the paper-scale sweeps; this bench
//! is the regression guard for the relative ordering (who is faster than whom).

use criterion::{criterion_group, criterion_main, Criterion};
use dpc_bench::{default_params, Algo, BenchDataset};
use std::hint::black_box;

const N: usize = 6_000;

fn bench_end_to_end(c: &mut Criterion) {
    let dataset = BenchDataset::Syn;
    let data = dataset.generate(N);
    let params = default_params(&dataset, 1);
    let mut group = c.benchmark_group("end_to_end_syn_6k");
    group.sample_size(10);

    for algo in Algo::all(0.8) {
        group.bench_function(algo.name(), |b| {
            b.iter(|| black_box(algo.run(&data, params)).num_clusters())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);

//! End-to-end benchmark: every algorithm on a small Syn dataset. The harness
//! binaries in `src/bin` cover the paper-scale sweeps; this bench is the
//! regression guard for the relative ordering (who is faster than whom), and
//! it also records the fit-vs-extract asymmetry the model API is built on.

use dpc_bench::micro::bench;
use dpc_bench::{default_params, default_thresholds, Algo, BenchDataset};

const N: usize = 6_000;

fn main() {
    let dataset = BenchDataset::Syn;
    let data = dataset.generate(N);
    let params = default_params(&dataset, 1);
    let thresholds = default_thresholds(params.dcut);
    println!("end_to_end ({} n = {N})", dataset.name());

    for algo in Algo::all(0.8) {
        let label = format!("fit+extract {}", algo.name());
        bench(&label, 5, || algo.run(&data, params, &thresholds).expect("run").num_clusters());
    }

    // The point of the fit/extract split: re-thresholding a fitted model is
    // orders of magnitude cheaper than any full run above.
    let model = Algo::ApproxDpc.fit(&data, params).expect("fit");
    bench("extract only (Approx-DPC model)", 50, || model.extract(&thresholds).num_clusters());
}

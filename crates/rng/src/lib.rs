//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace needs randomness in exactly three places — the synthetic
//! workload generators, LSH-DDP's random projections and CFSFDP-A's k-means
//! seeding — and in all three the requirements are the same: seeded,
//! reproducible across platforms, fast, and of "simulation quality" (no
//! cryptographic strength needed). This crate provides a xoshiro256++
//! generator seeded through SplitMix64, the combination recommended by the
//! xoshiro authors, with the handful of sampling helpers those call sites use.
//!
//! The type is named [`StdRng`] so call sites read like the `rand` crate
//! idiom, but the stream is stable forever: dataset seeds recorded in
//! EXPERIMENTS.md keep reproducing the same bytes.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step, used for seeding and as a standalone mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, as
    /// recommended by the xoshiro reference implementation).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (see [`SampleRange`] for the supported
    /// range types).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// One standard-normal sample (Box–Muller transform).
    pub fn gen_standard_normal(&mut self) -> f64 {
        // Sample u1 from (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - self.gen_f64();
        let u2: f64 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        // gen_f64 never returns 1.0, so `hi` itself is unreachable (except in
        // the degenerate lo == hi case) — indistinguishable from a half-open
        // range for the continuous distributions sampled here; the inclusive
        // form is accepted so generator call sites read naturally.
        lo + rng.gen_f64() * (hi - lo)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range {:?}", self);
        let span = (self.end - self.start) as u64;
        // Modulo bias is below 2^-53 for the span sizes used in this workspace
        // (dataset sizes ≪ 2^32); accepted for simulation purposes.
        self.start + (rng.next_u64() % span) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
            let y = rng.gen_range(2.0..=4.0);
            assert!((2.0..=4.0).contains(&y));
            let k = rng.gen_range(5..9usize);
            assert!((5..9).contains(&k));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(12345);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}

//! Bit-identity property tests for the batched distance kernels.
//!
//! The dispatching kernels of `dpc_geometry::batch` must be **bit-identical**
//! to the scalar reference implementations, whatever path the dispatcher takes
//! (scalar with the `simd` feature off; SSE2/AVX2 with it on). The inputs
//! sweep the dimensionalities of the paper's workloads (2, 3) plus a generic
//! one (8), with duplicates, collinear rows, `±0.0`, subnormals and `1e±150`
//! magnitudes, and radii placed *exactly* on row distances so the closed-ball
//! boundary is exercised bit-for-bit.
//!
//! The suite runs with the `simd` feature both on and off (CI builds both);
//! with it on, on `x86_64`, the SSE2 and AVX2 widths are additionally pinned
//! against the scalar kernels one by one, not just through the dispatcher.

use dpc_geometry::batch;
use dpc_geometry::dist_sq;
use dpc_rng::StdRng;

/// Values covering the special-case zoo: signed zeros, subnormals, tiny and
/// huge magnitudes.
const SPECIAL: &[f64] = &[
    0.0, -0.0, 1.0, -1.0, 0.5, 3.0, 4.0, 1e-150, -1e-150, 1e150, -1e150,
    5e-324, // smallest positive subnormal
    -5e-324, 1.0e-308, // subnormal
    1.7, -42.25,
];

fn special_value(rng: &mut StdRng) -> f64 {
    if rng.gen_range(0.0..1.0) < 0.5 {
        SPECIAL[rng.gen_range(0.0..SPECIAL.len() as f64) as usize]
    } else {
        rng.gen_range(-100.0..100.0)
    }
}

/// Builds a rows buffer of `n` rows mixing random rows, duplicates of earlier
/// rows, and collinear rows along a fixed direction.
fn build_rows(rng: &mut StdRng, n: usize, dim: usize) -> Vec<f64> {
    let dir: Vec<f64> = (0..dim).map(|a| if a % 2 == 0 { 1.0 } else { -0.5 }).collect();
    let mut rows: Vec<f64> = Vec::with_capacity(n * dim);
    for k in 0..n {
        let style = rng.gen_range(0.0..1.0);
        if style < 0.25 && k > 0 {
            // Exact duplicate of an earlier row.
            let src = rng.gen_range(0.0..k as f64) as usize;
            let copy: Vec<f64> = rows[src * dim..(src + 1) * dim].to_vec();
            rows.extend_from_slice(&copy);
        } else if style < 0.5 {
            // Collinear: t · dir for an integer t.
            let t = rng.gen_range(-8.0..8.0).floor();
            rows.extend(dir.iter().map(|&d| t * d));
        } else {
            rows.extend((0..dim).map(|_| special_value(rng)));
        }
    }
    rows
}

/// Radii to test against one (query, rows) pair: fixed specials plus radii
/// placed exactly on row distances (the closed-ball boundary).
fn radii(query: &[f64], rows: &[f64], dim: usize) -> Vec<f64> {
    let mut r = vec![0.0, 1.0, 25.0, 1e-300, 1e300, f64::INFINITY, f64::NAN];
    for row in rows.chunks_exact(dim).step_by(3) {
        r.push(dist_sq(query, row)); // exact boundary: dist² == r²
    }
    r
}

/// Asserts every kernel agrees with its scalar reference, bit for bit.
fn check_identity(query: &[f64], rows: &[f64], dim: usize, r_sq: f64) {
    let count_ref = batch::count_within_scalar(query, rows, dim, r_sq);
    assert_eq!(batch::count_within(query, rows, dim, r_sq), count_ref, "count (d={dim})");

    let mut hits_ref = Vec::new();
    batch::search_within_into_scalar(query, rows, dim, r_sq, &mut hits_ref);
    let mut hits = Vec::new();
    batch::search_within_into(query, rows, dim, r_sq, &mut hits);
    assert_eq!(hits, hits_ref, "search (d={dim})");

    let n = rows.len() / dim;
    for skip in [None, Some(0), Some(n / 2), Some(n.saturating_sub(1))] {
        let nn_ref = batch::nearest_in_bucket_scalar(query, rows, dim, skip);
        let nn = batch::nearest_in_bucket(query, rows, dim, skip);
        assert_eq!(
            nn.map(|(k, d)| (k, d.to_bits())),
            nn_ref.map(|(k, d)| (k, d.to_bits())),
            "nearest (d={dim}, skip={skip:?})"
        );
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use dpc_geometry::batch::x86;
        // SSE2 is baseline on x86_64: always pin the 2-wide path.
        assert_eq!(
            unsafe { x86::count_within_sse2(query, rows, dim, r_sq) },
            count_ref,
            "sse2 count (d={dim})"
        );
        let mut hits2 = Vec::new();
        unsafe { x86::search_within_into_sse2(query, rows, dim, r_sq, &mut hits2) };
        assert_eq!(hits2, hits_ref, "sse2 search (d={dim})");
        let nn_ref = batch::nearest_in_bucket_scalar(query, rows, dim, None);
        assert_eq!(
            unsafe { x86::nearest_in_bucket_sse2(query, rows, dim, None) }
                .map(|(k, d)| (k, d.to_bits())),
            nn_ref.map(|(k, d)| (k, d.to_bits())),
            "sse2 nearest (d={dim})"
        );
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(
                unsafe { x86::count_within_avx2(query, rows, dim, r_sq) },
                count_ref,
                "avx2 count (d={dim})"
            );
            let mut hits4 = Vec::new();
            unsafe { x86::search_within_into_avx2(query, rows, dim, r_sq, &mut hits4) };
            assert_eq!(hits4, hits_ref, "avx2 search (d={dim})");
            assert_eq!(
                unsafe { x86::nearest_in_bucket_avx2(query, rows, dim, None) }
                    .map(|(k, d)| (k, d.to_bits())),
                nn_ref.map(|(k, d)| (k, d.to_bits())),
                "avx2 nearest (d={dim})"
            );
        }
    }
}

#[test]
fn simd_and_scalar_kernels_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    for dim in [2usize, 3, 8] {
        // Row counts straddle the 4-wide and 2-wide chunk remainders and the
        // kd-tree leaf-bucket size.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 33, 64] {
            for _ in 0..8 {
                let rows = build_rows(&mut rng, n, dim);
                let query: Vec<f64> = (0..dim).map(|_| special_value(&mut rng)).collect();
                for r_sq in radii(&query, &rows, dim) {
                    check_identity(&query, &rows, dim, r_sq);
                }
            }
        }
    }
}

#[test]
fn boundary_rows_are_included_on_every_path() {
    // A 3-4-5 row at squared distance exactly 25 must be inside the closed
    // ball on every dispatch path and at every chunk position.
    for dim in [2usize, 3] {
        for n in 1..=20usize {
            for pos in 0..n {
                let mut rows = vec![0.0f64; n * dim];
                for (k, row) in rows.chunks_exact_mut(dim).enumerate() {
                    if k == pos {
                        row[0] = 3.0;
                        row[1] = 4.0; // dist² = 25 from the origin, any dim ≥ 2
                    } else {
                        row[0] = 1000.0 + k as f64;
                    }
                }
                let query = vec![0.0f64; dim];
                assert_eq!(batch::count_within(&query, &rows, dim, 25.0), 1, "n={n} pos={pos}");
                let mut hits = Vec::new();
                batch::search_within_into(&query, &rows, dim, 25.0, &mut hits);
                assert_eq!(hits, vec![pos], "n={n} pos={pos}");
                check_identity(&query, &rows, dim, 25.0);
            }
        }
    }
}

#[test]
fn duplicates_and_signed_zeros_count_consistently() {
    // ±0.0 coordinates are equal under IEEE comparison; duplicates must all
    // match at radius 0 on every path.
    let rows = vec![0.0, -0.0, -0.0, 0.0, 0.0, 0.0, 1.0, 2.0];
    for query in [[0.0, 0.0], [-0.0, -0.0], [-0.0, 0.0]] {
        assert_eq!(batch::count_within(&query, &rows, 2, 0.0), 3);
        check_identity(&query, &rows, 2, 0.0);
    }
}

//! Euclidean distance kernels.
//!
//! Local-density computation (Definition 1 of the paper) compares distances
//! against the cutoff `d_cut`; every comparison can be done on squared
//! distances, avoiding the square root on the innermost loop. Both forms are
//! provided and the rest of the workspace consistently uses [`dist_sq`] inside
//! hot loops and [`dist`] only where an actual distance value is reported.

/// Squared Euclidean distance between two coordinate slices.
///
/// Dispatches to fully unrolled kernels for the common low dimensionalities
/// (`d = 2` and `d = 3`, the bulk of the paper's workloads) and falls back to
/// the generic loop otherwise. All kernels accumulate terms in the same axis
/// order, so results are bit-identical across the dispatch paths.
///
/// # Panics
/// Panics (in debug builds) if the slices have different lengths. Callers must
/// only pass same-dimensional slices — see the crate docs for the release-mode
/// contract shared with the [`crate::batch`] kernels.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    match a.len() {
        2 => dist_sq_2(a, b),
        3 => dist_sq_3(a, b),
        _ => dist_sq_generic(a, b),
    }
}

/// Unrolled `d = 2` squared-distance kernel.
///
/// # Panics
/// Panics if either slice is shorter than 2.
#[inline]
pub fn dist_sq_2(a: &[f64], b: &[f64]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    dx * dx + dy * dy
}

/// Unrolled `d = 3` squared-distance kernel.
///
/// # Panics
/// Panics if either slice is shorter than 3.
#[inline]
pub fn dist_sq_3(a: &[f64], b: &[f64]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

/// Generic squared-distance loop for arbitrary dimensionality.
///
/// # Panics
/// Panics (in debug builds) if the slices have different lengths; release
/// builds would otherwise iterate the shorter slice (see the crate docs for
/// the release-mode contract).
#[inline]
pub fn dist_sq_generic(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let diff = x - y;
        acc += diff * diff;
    }
    acc
}

/// Euclidean distance between two coordinate slices.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// Squared distance from a coordinate slice to an axis-aligned rectangle given
/// by per-dimension `(min, max)` bounds. Returns `0.0` when the point lies
/// inside the rectangle.
///
/// This is the pruning predicate used by the kd-tree and R-tree: a subtree can
/// be skipped when `min_dist_sq_to_rect(query, lo, hi) > radius²`.
#[inline]
pub fn min_dist_sq_to_rect(p: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), lo.len());
    debug_assert_eq!(p.len(), hi.len());
    let mut acc = 0.0;
    for i in 0..p.len() {
        let v = p[i];
        let d = if v < lo[i] {
            lo[i] - v
        } else if v > hi[i] {
            v - hi[i]
        } else {
            0.0
        };
        acc += d * d;
    }
    acc
}

/// Squared distance from a coordinate slice to the farthest corner of an
/// axis-aligned rectangle. Useful for "the whole rectangle is within the query
/// ball" tests, which let range counting add an entire subtree without visiting
/// its leaves.
#[inline]
pub fn max_dist_sq_to_rect(p: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), lo.len());
    debug_assert_eq!(p.len(), hi.len());
    let mut acc = 0.0;
    for i in 0..p.len() {
        let d = (p[i] - lo[i]).abs().max((p[i] - hi[i]).abs());
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_pythagoras() {
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn specialized_kernels_are_bit_identical_to_generic() {
        let samples = [
            (vec![1.5, -2.25], vec![0.125, 7.75]),
            (vec![1e-9, 1e9], vec![-3.5, 2.0]),
            (vec![0.1, 0.2, 0.3], vec![-0.4, 0.5, -0.6]),
            (vec![1e8, -1e8, 1e-8], vec![0.0, 0.0, 0.0]),
        ];
        for (a, b) in &samples {
            let generic = dist_sq_generic(a, b);
            assert_eq!(dist_sq(a, b), generic);
            match a.len() {
                2 => assert_eq!(dist_sq_2(a, b), generic),
                3 => assert_eq!(dist_sq_3(a, b), generic),
                _ => unreachable!(),
            }
        }
        // Higher dimensionalities take the generic path.
        let a = vec![1.0; 8];
        let b = vec![3.0; 8];
        assert_eq!(dist_sq(&a, &b), 32.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = [1.5, -2.0, 7.25];
        assert_eq!(dist(&p, &p), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [-4.0, 0.5, 9.0];
        assert_eq!(dist_sq(&a, &b), dist_sq(&b, &a));
    }

    #[test]
    fn min_dist_inside_rect_is_zero() {
        let lo = [0.0, 0.0];
        let hi = [10.0, 10.0];
        assert_eq!(min_dist_sq_to_rect(&[5.0, 5.0], &lo, &hi), 0.0);
        assert_eq!(min_dist_sq_to_rect(&[0.0, 10.0], &lo, &hi), 0.0);
    }

    #[test]
    fn min_dist_outside_rect() {
        let lo = [0.0, 0.0];
        let hi = [10.0, 10.0];
        // 3 units left, 4 units above the rectangle.
        assert_eq!(min_dist_sq_to_rect(&[-3.0, 14.0], &lo, &hi), 25.0);
    }

    #[test]
    fn max_dist_reaches_far_corner() {
        let lo = [0.0, 0.0];
        let hi = [10.0, 10.0];
        // From the origin corner, the farthest corner is (10, 10).
        assert_eq!(max_dist_sq_to_rect(&[0.0, 0.0], &lo, &hi), 200.0);
        // From the centre the farthest corner is 5,5 away in each axis.
        assert_eq!(max_dist_sq_to_rect(&[5.0, 5.0], &lo, &hi), 50.0);
    }

    #[test]
    fn min_le_max_dist() {
        let lo = [-1.0, -1.0, -1.0];
        let hi = [1.0, 2.0, 3.0];
        let q = [5.0, -3.0, 0.5];
        assert!(min_dist_sq_to_rect(&q, &lo, &hi) <= max_dist_sq_to_rect(&q, &lo, &hi));
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let pts = [vec![0.0, 0.0], vec![1.0, 3.0], vec![-2.5, 4.0], vec![7.0, -1.0]];
        for a in &pts {
            for b in &pts {
                for c in &pts {
                    assert!(dist(a, c) <= dist(a, b) + dist(b, c) + 1e-12);
                }
            }
        }
    }
}

//! A multi-dimensional point.

use std::fmt;

/// A point in `d`-dimensional Euclidean space.
///
/// Coordinates are stored in a boxed slice so that a `Point` is two words on the
/// stack and cannot silently over-allocate. Most hot paths inside the workspace
/// operate on `&[f64]` slices borrowed from a [`crate::Dataset`] instead of on
/// `Point` values; `Point` is the convenient owned form used at API boundaries
/// (building datasets, returning representative points, tests).
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    /// Panics if `coords` is empty: a zero-dimensional point is never meaningful
    /// for clustering and always indicates a caller bug.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "a Point must have at least one dimension");
        Self { coords: coords.into_boxed_slice() }
    }

    /// Creates a 2-dimensional point. Convenience constructor used heavily in
    /// examples and tests.
    pub fn new2(x: f64, y: f64) -> Self {
        Self::new(vec![x, y])
    }

    /// The dimensionality of the point.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Borrows the coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Returns the coordinate along dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= self.dim()`.
    pub fn coord(&self, axis: usize) -> f64 {
        self.coords[axis]
    }

    /// Consumes the point and returns its coordinates.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords.into_vec()
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Self::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Self::new(coords.to_vec())
    }
}

impl std::ops::Index<usize> for Point {
    type Output = f64;

    fn index(&self, axis: usize) -> &f64 {
        &self.coords[axis]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coord(0), 1.0);
        assert_eq!(p[2], 3.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p.clone().into_coords(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn new2_builds_two_dimensional_point() {
        let p = Point::new2(4.0, -1.5);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.coords(), &[4.0, -1.5]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_point_panics() {
        let _ = Point::new(vec![]);
    }

    #[test]
    fn conversions() {
        let p: Point = vec![0.5, 0.25].into();
        assert_eq!(p.dim(), 2);
        let q: Point = p.coords().into();
        assert_eq!(p, q);
    }

    #[test]
    fn debug_formatting_lists_coordinates() {
        let p = Point::new2(1.0, 2.0);
        assert_eq!(format!("{p:?}"), "Point(1, 2)");
    }
}

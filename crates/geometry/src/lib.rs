//! Geometric primitives shared by every crate in the `fast-dpc` workspace.
//!
//! Density-Peaks Clustering operates on a set of `n` points in a low-dimensional
//! Euclidean space. This crate provides the point representation, distance
//! computations, axis-aligned rectangles (used by the kd-tree and R-tree), and a
//! small dataset container with the bookkeeping that the clustering algorithms
//! need (per-dimension domain, cardinality, dimensionality).
//!
//! The representation is deliberately simple: a [`Point`] is a boxed slice of
//! `f64` coordinates. The paper assumes low dimensionality (2–8 in the
//! evaluation), so a flat `Vec<f64>`-backed dataset with row-major layout keeps
//! cache behaviour predictable without introducing const-generic dimensions into
//! every public signature.

pub mod dataset;
pub mod distance;
pub mod point;
pub mod rect;

pub use dataset::Dataset;
pub use distance::{dist, dist_sq};
pub use point::Point;
pub use rect::Rect;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(dist(a.coords(), b.coords()), 5.0);
        let r = Rect::from_points(&[a.clone(), b.clone()]);
        assert!(r.contains(a.coords()));
        assert!(r.contains(b.coords()));
    }
}

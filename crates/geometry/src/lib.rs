//! Geometric primitives shared by every crate in the `fast-dpc` workspace.
//!
//! Density-Peaks Clustering operates on a set of `n` points in a low-dimensional
//! Euclidean space. This crate provides the point representation, distance
//! computations, axis-aligned rectangles (used by the kd-tree and R-tree), and a
//! small dataset container with the bookkeeping that the clustering algorithms
//! need (per-dimension domain, cardinality, dimensionality).
//!
//! The representation is deliberately simple: a [`Point`] is a boxed slice of
//! `f64` coordinates. The paper assumes low dimensionality (2–8 in the
//! evaluation), so a flat `Vec<f64>`-backed dataset with row-major layout keeps
//! cache behaviour predictable without introducing const-generic dimensions into
//! every public signature.
//!
//! # Radius-boundary semantics
//!
//! Every range predicate in the workspace uses the **closed** ball of the
//! paper's Definition 1: a point `q` is within radius `r` of `p` iff
//! `dist(p, q) ≤ r`, i.e. `dist_sq ≤ r²` on squared distances. This is the
//! semantics the grid's neighbour-cell guarantee is stated for ("every point
//! within `d_cut`"), and it is applied uniformly by the [`batch`] kernels, the
//! kd-tree/R-tree pruning tests ([`Rect::intersects_ball`] /
//! [`Rect::inside_ball`]), and the brute-force references in the test suites.
//! Points at distance exactly `d_cut` therefore always count towards ρ, on
//! every code path. (Earlier revisions mixed strict `<` in the trees with the
//! inclusive grid guarantee, which made ρ depend on which index answered.)
//!
//! # Slice-length contract
//!
//! Distance kernels take `&[f64]` slices. Mismatched lengths are upstream
//! logic errors: they are `debug_assert!`ed in [`distance`] and [`batch`],
//! and the debug assertions are the contract. Release builds stay memory-safe
//! but the outcome is unspecified per path: the unrolled `d = 2`/`d = 3`
//! kernels panic on an out-of-bounds index when a slice is short, while
//! [`distance::dist_sq_generic`] (and the dispatchers that reach it, batched
//! included) iterates the shorter slice and silently under-counts axes.
//! Callers must never rely on either behaviour.

pub mod batch;
pub mod dataset;
pub mod distance;
pub mod point;
pub mod rect;

pub use dataset::Dataset;
pub use distance::{dist, dist_sq};
pub use point::Point;
pub use rect::Rect;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(dist(a.coords(), b.coords()), 5.0);
        let r = Rect::from_points(&[a.clone(), b.clone()]);
        assert!(r.contains(a.coords()));
        assert!(r.contains(b.coords()));
    }
}

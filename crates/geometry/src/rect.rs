//! Axis-aligned rectangles (minimum bounding rectangles).

use crate::distance::{max_dist_sq_to_rect, min_dist_sq_to_rect};
use crate::point::Point;

/// An axis-aligned rectangle in `d` dimensions, stored as per-dimension
/// `(lo, hi)` bounds.
///
/// Used as the bounding volume of kd-tree subtrees and R-tree nodes, and as the
/// cell extent of the uniform grids built by Approx-DPC / S-Approx-DPC.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Creates a rectangle from explicit bounds.
    ///
    /// # Panics
    /// Panics if the bounds have different lengths, are empty, or if any
    /// `lo[i] > hi[i]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "lo/hi dimensionality mismatch");
        assert!(!lo.is_empty(), "a Rect must have at least one dimension");
        for i in 0..lo.len() {
            assert!(lo[i] <= hi[i], "lo[{i}] > hi[{i}] ({} > {})", lo[i], hi[i]);
        }
        Self { lo: lo.into_boxed_slice(), hi: hi.into_boxed_slice() }
    }

    /// The degenerate rectangle covering a single coordinate.
    pub fn from_coords(coords: &[f64]) -> Self {
        Self::new(coords.to_vec(), coords.to_vec())
    }

    /// The minimum bounding rectangle of a non-empty point set.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn from_points(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "cannot bound an empty point set");
        let dim = points[0].dim();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in points {
            for (i, &c) in p.coords().iter().enumerate() {
                if c < lo[i] {
                    lo[i] = c;
                }
                if c > hi[i] {
                    hi[i] = c;
                }
            }
        }
        Self::new(lo, hi)
    }

    /// The minimum bounding rectangle of a set of coordinate rows.
    ///
    /// # Panics
    /// Panics if the iterator yields no rows.
    pub fn from_rows<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut iter = rows.into_iter();
        let first = iter.next().expect("cannot bound an empty row set");
        let mut lo = first.to_vec();
        let mut hi = first.to_vec();
        for row in iter {
            for i in 0..lo.len() {
                if row[i] < lo[i] {
                    lo[i] = row[i];
                }
                if row[i] > hi[i] {
                    hi[i] = row[i];
                }
            }
        }
        Self::new(lo, hi)
    }

    /// Lower bounds, one per dimension.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds, one per dimension.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Dimensionality of the rectangle.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// The centre coordinate of the rectangle.
    pub fn center(&self) -> Vec<f64> {
        self.lo.iter().zip(self.hi.iter()).map(|(a, b)| 0.5 * (a + b)).collect()
    }

    /// Side length along dimension `axis`.
    pub fn extent(&self, axis: usize) -> f64 {
        self.hi[axis] - self.lo[axis]
    }

    /// The (hyper-)volume, i.e. the product of side lengths.
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(a, b)| b - a).product()
    }

    /// The margin (sum of side lengths), used by R-tree split heuristics.
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(a, b)| b - a).sum()
    }

    /// Whether the rectangle contains the coordinate (closed on all faces).
    pub fn contains(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        p.iter().zip(self.lo.iter().zip(self.hi.iter())).all(|(&c, (&lo, &hi))| c >= lo && c <= hi)
    }

    /// Whether two rectangles intersect (closed).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        for i in 0..self.dim() {
            if self.hi[i] < other.lo[i] || other.hi[i] < self.lo[i] {
                return false;
            }
        }
        true
    }

    /// Whether the **closed** ball `B̄(center, radius)` intersects the
    /// rectangle (see the crate docs on radius-boundary semantics).
    pub fn intersects_ball(&self, center: &[f64], radius: f64) -> bool {
        min_dist_sq_to_rect(center, &self.lo, &self.hi) <= radius * radius
    }

    /// Whether the rectangle is entirely inside the **closed** ball
    /// `B̄(center, radius)`.
    pub fn inside_ball(&self, center: &[f64], radius: f64) -> bool {
        max_dist_sq_to_rect(center, &self.lo, &self.hi) <= radius * radius
    }

    /// The smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), other.dim());
        let lo = self.lo.iter().zip(other.lo.iter()).map(|(a, b)| a.min(*b)).collect::<Vec<_>>();
        let hi = self.hi.iter().zip(other.hi.iter()).map(|(a, b)| a.max(*b)).collect::<Vec<_>>();
        Rect::new(lo, hi)
    }

    /// Grows the rectangle in place so that it covers `p`.
    pub fn expand_to(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for (i, &c) in p.iter().enumerate() {
            if c < self.lo[i] {
                self.lo[i] = c;
            }
            if c > self.hi[i] {
                self.hi[i] = c;
            }
        }
    }

    /// The increase in volume that would result from expanding to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).volume() - self.volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn basic_accessors() {
        let r = Rect::new(vec![0.0, -1.0], vec![2.0, 3.0]);
        assert_eq!(r.dim(), 2);
        assert_eq!(r.center(), vec![1.0, 1.0]);
        assert_eq!(r.extent(0), 2.0);
        assert_eq!(r.extent(1), 4.0);
        assert_eq!(r.volume(), 8.0);
        assert_eq!(r.margin(), 6.0);
    }

    #[test]
    #[should_panic(expected = "lo[0] > hi[0]")]
    fn inverted_bounds_panic() {
        let _ = Rect::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn contains_is_closed() {
        let r = unit();
        assert!(r.contains(&[0.0, 0.0]));
        assert!(r.contains(&[1.0, 1.0]));
        assert!(r.contains(&[0.5, 0.5]));
        assert!(!r.contains(&[1.0001, 0.5]));
    }

    #[test]
    fn intersection_tests() {
        let a = unit();
        let b = Rect::new(vec![0.5, 0.5], vec![2.0, 2.0]);
        let c = Rect::new(vec![2.0, 2.0], vec![3.0, 3.0]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching rectangles intersect (closed semantics).
        let d = Rect::new(vec![1.0, 0.0], vec![2.0, 1.0]);
        assert!(a.intersects(&d));
    }

    #[test]
    fn ball_tests() {
        let r = unit();
        assert!(r.intersects_ball(&[0.5, 0.5], 0.1));
        assert!(r.intersects_ball(&[2.0, 0.5], 1.1));
        assert!(r.intersects_ball(&[2.0, 0.5], 1.0)); // closed ball: touching intersects
        assert!(!r.intersects_ball(&[2.0, 0.5], 0.99));
        assert!(r.inside_ball(&[0.5, 0.5], 1.0));
        assert!(!r.inside_ball(&[0.5, 0.5], 0.7));
        // The far corner at distance exactly √0.5 is inside the closed ball.
        assert!(r.inside_ball(&[0.5, 0.5], 0.5f64.sqrt()));
    }

    #[test]
    fn union_and_enlargement() {
        let a = unit();
        let b = Rect::new(vec![2.0, 2.0], vec![3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(vec![0.0, 0.0], vec![3.0, 3.0]));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
    }

    #[test]
    fn from_points_and_expand() {
        let pts = vec![Point::new2(1.0, 5.0), Point::new2(-2.0, 0.0), Point::new2(4.0, 2.0)];
        let r = Rect::from_points(&pts);
        assert_eq!(r, Rect::new(vec![-2.0, 0.0], vec![4.0, 5.0]));
        let mut r2 = Rect::from_coords(&[0.0, 0.0]);
        r2.expand_to(&[3.0, -1.0]);
        assert_eq!(r2, Rect::new(vec![0.0, -1.0], vec![3.0, 0.0]));
    }

    #[test]
    fn from_rows_matches_from_points() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 5.0], vec![-2.0, 0.0], vec![4.0, 2.0]];
        let r = Rect::from_rows(rows.iter().map(|r| r.as_slice()));
        assert_eq!(r, Rect::new(vec![-2.0, 0.0], vec![4.0, 5.0]));
    }
}

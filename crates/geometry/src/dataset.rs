//! A flat, row-major dataset container.

use crate::point::Point;
use crate::rect::Rect;

/// An in-memory set of `n` points in `d`-dimensional space.
///
/// Coordinates are stored contiguously in row-major order (`n * d` values),
/// which is the layout every algorithm in the workspace iterates over. Point
/// identifiers are simply row indices `0..n`, matching the paper's `p_i`
/// notation.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    dim: usize,
    coords: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset of the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { dim, coords: Vec::new() }
    }

    /// Creates an empty dataset with room for `capacity` points.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { dim, coords: Vec::with_capacity(capacity * dim) }
    }

    /// Builds a dataset from a flat row-major coordinate buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or if the buffer length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, coords: Vec<f64>) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(
            coords.len() % dim == 0,
            "coordinate buffer length {} is not a multiple of dim {}",
            coords.len(),
            dim
        );
        Self { dim, coords }
    }

    /// Builds a dataset from owned points.
    ///
    /// # Panics
    /// Panics if the points do not all share the same dimensionality or if the
    /// slice is empty (use [`Dataset::new`] for an empty dataset).
    pub fn from_points(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "use Dataset::new for an empty dataset");
        let dim = points[0].dim();
        let mut coords = Vec::with_capacity(points.len() * dim);
        for p in points {
            assert_eq!(p.dim(), dim, "all points must share the same dimensionality");
            coords.extend_from_slice(p.coords());
        }
        Self { dim, coords }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality of every point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows the coordinates of point `id`.
    ///
    /// # Panics
    /// Panics if `id >= self.len()`.
    #[inline]
    pub fn point(&self, id: usize) -> &[f64] {
        let start = id * self.dim;
        &self.coords[start..start + self.dim]
    }

    /// Returns point `id` as an owned [`Point`].
    pub fn point_owned(&self, id: usize) -> Point {
        Point::new(self.point(id).to_vec())
    }

    /// Appends a point given as a coordinate slice and returns its identifier.
    ///
    /// # Panics
    /// Panics if the slice dimensionality does not match the dataset.
    pub fn push(&mut self, coords: &[f64]) -> usize {
        assert_eq!(coords.len(), self.dim, "dimensionality mismatch on push");
        self.coords.extend_from_slice(coords);
        self.len() - 1
    }

    /// Iterates over `(id, coordinates)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> + '_ {
        self.coords.chunks_exact(self.dim).enumerate()
    }

    /// The raw row-major coordinate buffer.
    pub fn flat(&self) -> &[f64] {
        &self.coords
    }

    /// The minimum bounding rectangle of the dataset, or `None` when empty.
    pub fn bounding_rect(&self) -> Option<Rect> {
        if self.is_empty() {
            return None;
        }
        Some(Rect::from_rows(self.coords.chunks_exact(self.dim)))
    }

    /// Builds a new dataset containing only the rows whose identifiers are in
    /// `ids` (in the given order). Identifiers in the returned dataset are
    /// renumbered `0..ids.len()`.
    pub fn select(&self, ids: &[usize]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, ids.len());
        for &id in ids {
            out.push(self.point(id));
        }
        out
    }

    /// Approximate heap memory used by the coordinate buffer, in bytes.
    pub fn mem_usage(&self) -> usize {
        self.coords.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 4.0])
    }

    #[test]
    fn construction_and_len() {
        let ds = sample();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.point(1), &[1.0, 1.0]);
        assert_eq!(ds.point_owned(2), Point::new2(2.0, 4.0));
    }

    #[test]
    fn push_appends_rows() {
        let mut ds = Dataset::new(3);
        assert!(ds.is_empty());
        let id0 = ds.push(&[1.0, 2.0, 3.0]);
        let id1 = ds.push(&[4.0, 5.0, 6.0]);
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_wrong_dim_panics() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_validates_length() {
        let _ = Dataset::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_points_round_trip() {
        let pts = vec![Point::new2(0.5, 1.5), Point::new2(-1.0, 2.0)];
        let ds = Dataset::from_points(&pts);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point_owned(0), pts[0]);
        assert_eq!(ds.point_owned(1), pts[1]);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ds = sample();
        let ids: Vec<usize> = ds.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let last = ds.iter().last().unwrap();
        assert_eq!(last.1, &[2.0, 4.0]);
    }

    #[test]
    fn bounding_rect_covers_all_points() {
        let ds = sample();
        let r = ds.bounding_rect().unwrap();
        assert_eq!(r, Rect::new(vec![0.0, 0.0], vec![2.0, 4.0]));
        assert!(Dataset::new(2).bounding_rect().is_none());
    }

    #[test]
    fn select_renumbers_rows() {
        let ds = sample();
        let sub = ds.select(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), &[2.0, 4.0]);
        assert_eq!(sub.point(1), &[0.0, 0.0]);
    }

    #[test]
    fn mem_usage_is_nonzero_for_nonempty() {
        assert!(sample().mem_usage() >= 6 * std::mem::size_of::<f64>());
    }
}

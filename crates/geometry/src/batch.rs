//! Batched distance kernels over contiguous row-major coordinate buffers.
//!
//! Every spatial index in the workspace stores candidate points as packed
//! row-major rows — the kd-tree's leaf buckets, the CSR grid's per-cell
//! coordinate strips, gathered range-search supersets — and the hot inner loop
//! of the ρ phase (Definition 1) is always the same shape: *one query against a
//! whole bucket of rows*. This module is that loop, implemented once, audited
//! once, and used by every caller:
//!
//! * [`count_within`] — how many rows lie in the **closed** ball
//!   `dist²(query, row) ≤ r_sq` (the paper's `dist ≤ d_cut` predicate);
//! * [`search_within_into`] — the row indices of those rows, appended in row
//!   order to a caller-reusable buffer;
//! * [`nearest_in_bucket`] — the row with the smallest squared distance
//!   (earliest row wins ties), optionally skipping one row.
//!
//! # SIMD
//!
//! With the `simd` cargo feature enabled on `x86_64`, the kernels process four
//! rows per iteration with AVX2 (detected at runtime) or two rows with SSE2
//! (baseline on `x86_64`), with dedicated layouts for `d = 2` and `d = 3` and a
//! lane-strided path for any other dimensionality. Everywhere else — feature
//! disabled, other architectures — the scalar reference implementations run.
//!
//! The vector paths are **bit-identical** to the scalar ones by construction:
//! each lane performs exactly the per-axis operations of
//! [`dist_sq`] in the same order (IEEE 754 arithmetic
//! is deterministic per operation, and no FMA contraction is introduced), the
//! `≤` predicate maps to ordered non-signalling vector compares (false for
//! NaN, exactly like the scalar `<=`), and reductions that depend on order
//! (reporting, arg-min) are applied in row order. The property tests in
//! `tests/batch_identity.rs` assert bitwise equality across the paths.
//!
//! # Slice-length contract
//!
//! All kernels require `query.len() == dim`, `dim > 0` and
//! `rows.len() % dim == 0`; these are `debug_assert!`ed here (one place, not
//! per caller), and the debug assertions **are** the contract. See the crate
//! docs for the release-mode behaviour of a violating call: memory-safe but
//! unspecified — depending on the dispatch path it may panic on an
//! out-of-bounds index or silently iterate fewer axes (the scalar fallback
//! reaches `dist_sq_generic`'s truncating `zip`, and the lane-strided SIMD
//! paths iterate the query's length). Never rely on either outcome.

use crate::distance::dist_sq;

/// Counts rows of `rows` (row-major, `dim` values per row) whose squared
/// Euclidean distance to `query` is **at most** `r_sq` (closed ball).
///
/// Rows containing NaN never match (every comparison with NaN is false), and a
/// NaN `r_sq` matches nothing.
#[inline]
pub fn count_within(query: &[f64], rows: &[f64], dim: usize, r_sq: f64) -> usize {
    debug_batch_contract(query, rows, dim);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        unsafe { x86::count_within(query, rows, dim, r_sq) }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        count_within_scalar(query, rows, dim, r_sq)
    }
}

/// Appends the indices of the rows within the closed ball (`dist² ≤ r_sq`) to
/// `out`, in ascending row order. The buffer is **not** cleared, so callers
/// can map one bucket's hits to identifiers before scanning the next bucket.
#[inline]
pub fn search_within_into(
    query: &[f64],
    rows: &[f64],
    dim: usize,
    r_sq: f64,
    out: &mut Vec<usize>,
) {
    debug_batch_contract(query, rows, dim);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        unsafe { x86::search_within_into(query, rows, dim, r_sq, out) }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        search_within_into_scalar(query, rows, dim, r_sq, out)
    }
}

/// Returns `(row index, squared distance)` of the row nearest to `query`,
/// skipping row `skip` (if given). The earliest row wins ties, exactly like a
/// scalar `d < best` scan from row 0. Returns `None` when no candidate row
/// exists (empty bucket, or a one-row bucket whose row is skipped).
#[inline]
pub fn nearest_in_bucket(
    query: &[f64],
    rows: &[f64],
    dim: usize,
    skip: Option<usize>,
) -> Option<(usize, f64)> {
    debug_batch_contract(query, rows, dim);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        unsafe { x86::nearest_in_bucket(query, rows, dim, skip) }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        nearest_in_bucket_scalar(query, rows, dim, skip)
    }
}

/// Scalar reference implementation of [`count_within`]. Public so property
/// tests and benchmarks can pin the SIMD paths against it.
#[inline]
pub fn count_within_scalar(query: &[f64], rows: &[f64], dim: usize, r_sq: f64) -> usize {
    debug_batch_contract(query, rows, dim);
    let mut c = 0usize;
    for row in rows.chunks_exact(dim) {
        if dist_sq(query, row) <= r_sq {
            c += 1;
        }
    }
    c
}

/// Scalar reference implementation of [`search_within_into`].
#[inline]
pub fn search_within_into_scalar(
    query: &[f64],
    rows: &[f64],
    dim: usize,
    r_sq: f64,
    out: &mut Vec<usize>,
) {
    debug_batch_contract(query, rows, dim);
    for (k, row) in rows.chunks_exact(dim).enumerate() {
        if dist_sq(query, row) <= r_sq {
            out.push(k);
        }
    }
}

/// Scalar reference implementation of [`nearest_in_bucket`].
#[inline]
pub fn nearest_in_bucket_scalar(
    query: &[f64],
    rows: &[f64],
    dim: usize,
    skip: Option<usize>,
) -> Option<(usize, f64)> {
    debug_batch_contract(query, rows, dim);
    let skip = skip.unwrap_or(usize::MAX);
    // `d < best_d` from +∞, exactly like the index NN loops: the earliest row
    // wins ties and NaN distances never become the best.
    let mut best: Option<(usize, f64)> = None;
    let mut best_d = f64::INFINITY;
    for (k, row) in rows.chunks_exact(dim).enumerate() {
        if k == skip {
            continue;
        }
        let d = dist_sq(query, row);
        if d < best_d {
            best_d = d;
            best = Some((k, d));
        }
    }
    best
}

/// The shared `debug_assert!` half of the slice-length contract (see the
/// module docs for the release-mode half).
#[inline]
fn debug_batch_contract(query: &[f64], rows: &[f64], dim: usize) {
    debug_assert!(dim > 0, "dimensionality must be positive");
    debug_assert_eq!(query.len(), dim, "query dimensionality mismatch");
    debug_assert_eq!(rows.len() % dim, 0, "rows buffer is not a whole number of rows");
}

/// x86-64 SSE2/AVX2 implementations. Everything in here upholds the same
/// contract as the scalar kernels: per-row squared distances are computed with
/// the exact operation sequence of `dist_sq`, predicates are ordered
/// non-signalling compares, and order-sensitive reductions run in row order.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[doc(hidden)]
pub mod x86 {
    use super::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Whether the AVX2 4-wide paths may run (cached by `std` behind an atomic).
    #[inline]
    fn has_avx2() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// # Safety
    /// Safe on any `x86_64` (SSE2 is baseline; AVX2 is runtime-detected).
    /// Marked unsafe only to mirror the intrinsic call chain.
    #[inline]
    pub unsafe fn count_within(query: &[f64], rows: &[f64], dim: usize, r_sq: f64) -> usize {
        if has_avx2() {
            count_within_avx2(query, rows, dim, r_sq)
        } else {
            count_within_sse2(query, rows, dim, r_sq)
        }
    }

    /// # Safety
    /// Safe on any `x86_64`; see [`count_within`].
    #[inline]
    pub unsafe fn search_within_into(
        query: &[f64],
        rows: &[f64],
        dim: usize,
        r_sq: f64,
        out: &mut Vec<usize>,
    ) {
        if has_avx2() {
            search_within_into_avx2(query, rows, dim, r_sq, out)
        } else {
            search_within_into_sse2(query, rows, dim, r_sq, out)
        }
    }

    /// # Safety
    /// Safe on any `x86_64`; see [`count_within`].
    #[inline]
    pub unsafe fn nearest_in_bucket(
        query: &[f64],
        rows: &[f64],
        dim: usize,
        skip: Option<usize>,
    ) -> Option<(usize, f64)> {
        if has_avx2() {
            nearest_in_bucket_avx2(query, rows, dim, skip)
        } else {
            nearest_in_bucket_sse2(query, rows, dim, skip)
        }
    }

    // ---- AVX2: 4 rows per iteration (8 on the d = 2 counting fast path). ----

    /// Squared distances of the 4 `d = 2` rows at `p`, lanes in **unpack
    /// order** `[d0, d2, d1, d3]`: two in-lane unpacks split x/y columns
    /// without any cross-lane shuffle. Counting doesn't care about lane order;
    /// order-sensitive callers permute afterwards.
    ///
    /// # Safety
    /// Requires AVX2 and 8 readable `f64`s at `p`.
    #[target_feature(enable = "avx2")]
    unsafe fn dists4_2d_unpacked(p: *const f64, qx: __m256d, qy: __m256d) -> __m256d {
        let a = _mm256_loadu_pd(p); // x0 y0 | x1 y1
        let b = _mm256_loadu_pd(p.add(4)); // x2 y2 | x3 y3
        let x = _mm256_unpacklo_pd(a, b); // x0 x2 | x1 x3
        let y = _mm256_unpackhi_pd(a, b); // y0 y2 | y1 y3
        let dx = _mm256_sub_pd(x, qx);
        let dy = _mm256_sub_pd(y, qy);
        // dx² + dy² per lane — the operand set and order of `dist_sq_2`
        // (the sign of dx/dy is flipped vs the scalar kernel, which the
        // squaring erases exactly, including for ±0 and NaN).
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy))
    }

    /// Computes the squared distances of rows `base..base + 4` into a vector
    /// whose lanes are in row order.
    ///
    /// # Safety
    /// Requires AVX2 and `(base + 4) * dim <= rows.len()`; `dim` must match
    /// the layout the caller dispatched on.
    #[target_feature(enable = "avx2")]
    unsafe fn dists4_avx2(query: &[f64], rows: &[f64], dim: usize, base: usize) -> __m256d {
        match dim {
            2 => {
                let p = rows.as_ptr().add(base * 2);
                let d = dists4_2d_unpacked(p, _mm256_set1_pd(query[0]), _mm256_set1_pd(query[1]));
                // [d0 d2 d1 d3] → row order [d0 d1 d2 d3].
                _mm256_permute4x64_pd(d, 0b1101_1000)
            }
            3 => {
                // Three contiguous loads transposed to x/y/z columns with
                // in-register shuffles, then (dx² + dy²) + dz² per lane — the
                // exact operation order of the scalar `dist_sq_3`.
                let p = rows.as_ptr().add(base * 3);
                let v0 = _mm256_loadu_pd(p); // x0 y0 | z0 x1
                let v1 = _mm256_loadu_pd(p.add(4)); // y1 z1 | x2 y2
                let v2 = _mm256_loadu_pd(p.add(8)); // z2 x3 | y3 z3
                let u = _mm256_permute2f128_pd(v0, v1, 0x30); // x0 y0 | x2 y2
                let v = _mm256_permute2f128_pd(v0, v2, 0x21); // z0 x1 | z2 x3
                let w = _mm256_permute2f128_pd(v1, v2, 0x30); // y1 z1 | y3 z3
                let x = _mm256_shuffle_pd(u, v, 0b1010); // x0 x1 | x2 x3
                let y = _mm256_shuffle_pd(u, w, 0b0101); // y0 y1 | y2 y3
                let z = _mm256_shuffle_pd(v, w, 0b1010); // z0 z1 | z2 z3
                let dx = _mm256_sub_pd(x, _mm256_set1_pd(query[0]));
                let dy = _mm256_sub_pd(y, _mm256_set1_pd(query[1]));
                let dz = _mm256_sub_pd(z, _mm256_set1_pd(query[2]));
                _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                    _mm256_mul_pd(dz, dz),
                )
            }
            _ => {
                // Generic d ≥ 4: four contiguous row loads per 4-axis block,
                // transposed in registers to axis vectors (lane = row), then
                // accumulated one axis at a time in ascending axis order — the
                // exact operation order of the scalar `dist_sq_generic`, with
                // no strided gathers on the hot path.
                let p = rows.as_ptr().add(base * dim);
                let mut acc = _mm256_setzero_pd();
                let mut a = 0usize;
                while a + 4 <= dim {
                    let v0 = _mm256_loadu_pd(p.add(a)); // row0: a a+1 | a+2 a+3
                    let v1 = _mm256_loadu_pd(p.add(dim + a));
                    let v2 = _mm256_loadu_pd(p.add(2 * dim + a));
                    let v3 = _mm256_loadu_pd(p.add(3 * dim + a));
                    let t0 = _mm256_unpacklo_pd(v0, v1); // a: r0 r1 | a+2: r0 r1
                    let t1 = _mm256_unpackhi_pd(v0, v1); // a+1: r0 r1 | a+3: r0 r1
                    let t2 = _mm256_unpacklo_pd(v2, v3);
                    let t3 = _mm256_unpackhi_pd(v2, v3);
                    for (axis, col) in [
                        _mm256_permute2f128_pd(t0, t2, 0x20), // axis a, lanes r0..r3
                        _mm256_permute2f128_pd(t1, t3, 0x20), // axis a+1
                        _mm256_permute2f128_pd(t0, t2, 0x31), // axis a+2
                        _mm256_permute2f128_pd(t1, t3, 0x31), // axis a+3
                    ]
                    .into_iter()
                    .enumerate()
                    {
                        let d = _mm256_sub_pd(col, _mm256_set1_pd(query[a + axis]));
                        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
                    }
                    a += 4;
                }
                // Remainder axes (dim mod 4) stay lane-strided gathers.
                while a < dim {
                    let v = _mm256_set_pd(
                        *p.add(3 * dim + a),
                        *p.add(2 * dim + a),
                        *p.add(dim + a),
                        *p.add(a),
                    );
                    let d = _mm256_sub_pd(v, _mm256_set1_pd(query[a]));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
                    a += 1;
                }
                acc
            }
        }
    }

    /// # Safety
    /// Requires AVX2 (check `is_x86_feature_detected!("avx2")` first).
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_within_avx2(query: &[f64], rows: &[f64], dim: usize, r_sq: f64) -> usize {
        let n = rows.len() / dim;
        let r = _mm256_set1_pd(r_sq);
        let mut count = 0usize;
        let mut base = 0usize;
        if dim == 2 {
            // Counting ignores lane order, so the ρ-phase fast path skips the
            // row-order permute entirely and processes 8 rows per iteration.
            let qx = _mm256_set1_pd(query[0]);
            let qy = _mm256_set1_pd(query[1]);
            while base + 8 <= n {
                let p = rows.as_ptr().add(base * 2);
                let d0 = dists4_2d_unpacked(p, qx, qy);
                let d1 = dists4_2d_unpacked(p.add(8), qx, qy);
                // Ordered non-signalling ≤: false for NaN, like scalar `<=`.
                let m0 = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(d0, r));
                let m1 = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(d1, r));
                count += (m0.count_ones() + m1.count_ones()) as usize;
                base += 8;
            }
        }
        while base + 4 <= n {
            let d = dists4_avx2(query, rows, dim, base);
            let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(d, r));
            count += mask.count_ones() as usize;
            base += 4;
        }
        count + count_within_scalar(query, &rows[base * dim..], dim, r_sq)
    }

    /// # Safety
    /// Requires AVX2 (check `is_x86_feature_detected!("avx2")` first).
    #[target_feature(enable = "avx2")]
    pub unsafe fn search_within_into_avx2(
        query: &[f64],
        rows: &[f64],
        dim: usize,
        r_sq: f64,
        out: &mut Vec<usize>,
    ) {
        let n = rows.len() / dim;
        let r = _mm256_set1_pd(r_sq);
        let mut base = 0usize;
        while base + 4 <= n {
            let d = dists4_avx2(query, rows, dim, base);
            let mut mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(d, r)) as u32;
            // Lanes are in row order, so draining set bits low-to-high reports
            // hits in ascending row order, matching the scalar kernel.
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                out.push(base + lane);
                mask &= mask - 1;
            }
            base += 4;
        }
        let tail = out.len();
        search_within_into_scalar(query, &rows[base * dim..], dim, r_sq, out);
        for v in &mut out[tail..] {
            *v += base;
        }
    }

    /// # Safety
    /// Requires AVX2 (check `is_x86_feature_detected!("avx2")` first).
    #[target_feature(enable = "avx2")]
    pub unsafe fn nearest_in_bucket_avx2(
        query: &[f64],
        rows: &[f64],
        dim: usize,
        skip: Option<usize>,
    ) -> Option<(usize, f64)> {
        let n = rows.len() / dim;
        let skip = skip.unwrap_or(usize::MAX);
        let mut best: Option<(usize, f64)> = None;
        let mut best_d = f64::INFINITY;
        let mut buf = [0.0f64; 4];
        let mut base = 0usize;
        while base + 4 <= n {
            _mm256_storeu_pd(buf.as_mut_ptr(), dists4_avx2(query, rows, dim, base));
            // The arg-min reduction is order-sensitive (earliest row wins a
            // tie, NaN never wins), so it stays a scalar pass over the lanes.
            for (lane, &d) in buf.iter().enumerate() {
                let k = base + lane;
                if k != skip && d < best_d {
                    best_d = d;
                    best = Some((k, d));
                }
            }
            base += 4;
        }
        for (k, row) in rows[base * dim..].chunks_exact(dim).enumerate() {
            let k = base + k;
            if k == skip {
                continue;
            }
            let d = dist_sq(query, row);
            if d < best_d {
                best_d = d;
                best = Some((k, d));
            }
        }
        best
    }

    // ---- SSE2: 2 rows per iteration (baseline on x86_64, no detection). ----

    /// Squared distances of rows `base..base + 2`, lanes in row order.
    ///
    /// # Safety
    /// Requires `(base + 2) * dim <= rows.len()`.
    #[inline]
    unsafe fn dists2_sse2(query: &[f64], rows: &[f64], dim: usize, base: usize) -> __m128d {
        match dim {
            2 => {
                let q = _mm_loadu_pd(query.as_ptr());
                let p = rows.as_ptr().add(base * 2);
                let a = _mm_sub_pd(_mm_loadu_pd(p), q);
                let b = _mm_sub_pd(_mm_loadu_pd(p.add(2)), q);
                let sa = _mm_mul_pd(a, a);
                let sb = _mm_mul_pd(b, b);
                // [sa0 sb0] + [sa1 sb1] = [d0 d1]: one add per row, exactly
                // dx² + dy².
                _mm_add_pd(_mm_unpacklo_pd(sa, sb), _mm_unpackhi_pd(sa, sb))
            }
            3 => {
                let p = rows.as_ptr().add(base * 3);
                let x = _mm_set_pd(*p.add(3), *p);
                let y = _mm_set_pd(*p.add(4), *p.add(1));
                let z = _mm_set_pd(*p.add(5), *p.add(2));
                let dx = _mm_sub_pd(x, _mm_set1_pd(query[0]));
                let dy = _mm_sub_pd(y, _mm_set1_pd(query[1]));
                let dz = _mm_sub_pd(z, _mm_set1_pd(query[2]));
                _mm_add_pd(_mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)), _mm_mul_pd(dz, dz))
            }
            _ => {
                // Generic d ≥ 4: contiguous pair loads per 2-axis block,
                // transposed with unpacks (lane = row), accumulated in
                // ascending axis order like the scalar `dist_sq_generic`.
                let p = rows.as_ptr().add(base * dim);
                let mut acc = _mm_setzero_pd();
                let mut a = 0usize;
                while a + 2 <= dim {
                    let v0 = _mm_loadu_pd(p.add(a)); // row0: a a+1
                    let v1 = _mm_loadu_pd(p.add(dim + a)); // row1: a a+1
                    for (axis, col) in
                        [_mm_unpacklo_pd(v0, v1), _mm_unpackhi_pd(v0, v1)].into_iter().enumerate()
                    {
                        let d = _mm_sub_pd(col, _mm_set1_pd(query[a + axis]));
                        acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
                    }
                    a += 2;
                }
                if a < dim {
                    let v = _mm_set_pd(*p.add(dim + a), *p.add(a));
                    let d = _mm_sub_pd(v, _mm_set1_pd(query[a]));
                    acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
                }
                acc
            }
        }
    }

    /// # Safety
    /// Safe on any `x86_64` (SSE2 is baseline); unsafe only for the intrinsic
    /// call chain.
    #[inline]
    pub unsafe fn count_within_sse2(query: &[f64], rows: &[f64], dim: usize, r_sq: f64) -> usize {
        let n = rows.len() / dim;
        let r = _mm_set1_pd(r_sq);
        let mut count = 0usize;
        let mut base = 0usize;
        while base + 2 <= n {
            let mask = _mm_movemask_pd(_mm_cmple_pd(dists2_sse2(query, rows, dim, base), r));
            count += mask.count_ones() as usize;
            base += 2;
        }
        count + count_within_scalar(query, &rows[base * dim..], dim, r_sq)
    }

    /// # Safety
    /// Safe on any `x86_64` (SSE2 is baseline); unsafe only for the intrinsic
    /// call chain.
    #[inline]
    pub unsafe fn search_within_into_sse2(
        query: &[f64],
        rows: &[f64],
        dim: usize,
        r_sq: f64,
        out: &mut Vec<usize>,
    ) {
        let n = rows.len() / dim;
        let r = _mm_set1_pd(r_sq);
        let mut base = 0usize;
        while base + 2 <= n {
            let mask = _mm_movemask_pd(_mm_cmple_pd(dists2_sse2(query, rows, dim, base), r));
            if mask & 1 != 0 {
                out.push(base);
            }
            if mask & 2 != 0 {
                out.push(base + 1);
            }
            base += 2;
        }
        let tail = out.len();
        search_within_into_scalar(query, &rows[base * dim..], dim, r_sq, out);
        for v in &mut out[tail..] {
            *v += base;
        }
    }

    /// # Safety
    /// Safe on any `x86_64` (SSE2 is baseline); unsafe only for the intrinsic
    /// call chain.
    #[inline]
    pub unsafe fn nearest_in_bucket_sse2(
        query: &[f64],
        rows: &[f64],
        dim: usize,
        skip: Option<usize>,
    ) -> Option<(usize, f64)> {
        let n = rows.len() / dim;
        let skip = skip.unwrap_or(usize::MAX);
        let mut best: Option<(usize, f64)> = None;
        let mut best_d = f64::INFINITY;
        let mut buf = [0.0f64; 2];
        let mut base = 0usize;
        while base + 2 <= n {
            _mm_storeu_pd(buf.as_mut_ptr(), dists2_sse2(query, rows, dim, base));
            for (lane, &d) in buf.iter().enumerate() {
                let k = base + lane;
                if k != skip && d < best_d {
                    best_d = d;
                    best = Some((k, d));
                }
            }
            base += 2;
        }
        for (k, row) in rows[base * dim..].chunks_exact(dim).enumerate() {
            let k = base + k;
            if k == skip {
                continue;
            }
            let d = dist_sq(query, row);
            if d < best_d {
                best_d = d;
                best = Some((k, d));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_2d() -> Vec<f64> {
        // Includes an exact 3-4-5 boundary row and a duplicate of the query.
        vec![0.0, 0.0, 3.0, 4.0, 10.0, 10.0, -3.0, -4.0, 1.0, 1.0, 0.0, 0.0]
    }

    #[test]
    fn count_is_inclusive_at_the_boundary() {
        let q = [0.0, 0.0];
        let rows = rows_2d();
        // r² = 25: rows at distance exactly 5 (3,4) and (−3,−4) must count.
        assert_eq!(count_within(&q, &rows, 2, 25.0), 5);
        assert_eq!(count_within_scalar(&q, &rows, 2, 25.0), 5);
        // Just below the boundary they must not.
        let below = 25.0 - 1e-9;
        assert_eq!(count_within(&q, &rows, 2, below), 3);
        // r² = 0 still matches exact duplicates (closed ball).
        assert_eq!(count_within(&q, &rows, 2, 0.0), 2);
    }

    #[test]
    fn search_reports_row_indices_in_order_without_clearing() {
        let q = [0.0, 0.0];
        let rows = rows_2d();
        let mut out = vec![99usize];
        search_within_into(&q, &rows, 2, 25.0, &mut out);
        assert_eq!(out, vec![99, 0, 1, 3, 4, 5]);
        out.clear();
        search_within_into_scalar(&q, &rows, 2, 25.0, &mut out);
        assert_eq!(out, vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn nearest_prefers_earliest_row_and_honours_skip() {
        let q = [0.0, 0.0];
        let rows = rows_2d();
        // Rows 0 and 5 are both at distance 0; the earliest must win.
        assert_eq!(nearest_in_bucket(&q, &rows, 2, None), Some((0, 0.0)));
        assert_eq!(nearest_in_bucket(&q, &rows, 2, Some(0)), Some((5, 0.0)));
        assert_eq!(nearest_in_bucket_scalar(&q, &rows, 2, Some(0)), Some((5, 0.0)));
        // Empty bucket and fully-skipped bucket.
        assert_eq!(nearest_in_bucket(&q, &[], 2, None), None);
        assert_eq!(nearest_in_bucket(&q, &[7.0, 7.0], 2, Some(0)), None);
    }

    #[test]
    fn nan_rows_never_match_and_never_win() {
        let q = [0.0, 0.0];
        let rows = vec![f64::NAN, 0.0, 1.0, 0.0];
        assert_eq!(count_within(&q, &rows, 2, 1e18), 1);
        let mut out = Vec::new();
        search_within_into(&q, &rows, 2, 1e18, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(nearest_in_bucket(&q, &rows, 2, None), Some((1, 1.0)));
        // NaN radius matches nothing.
        assert_eq!(count_within(&q, &rows, 2, f64::NAN), 0);
    }

    #[test]
    fn generic_dimensionality_matches_a_hand_count() {
        let q = [1.0; 5];
        let mut rows = vec![1.0; 5 * 7];
        rows[5 * 3] = 4.0; // row 3 at squared distance 9
        assert_eq!(count_within(&q, &rows, 5, 8.999), 6);
        assert_eq!(count_within(&q, &rows, 5, 9.0), 7);
        assert_eq!(nearest_in_bucket(&q, &rows, 5, Some(0)), Some((1, 0.0)));
    }
}

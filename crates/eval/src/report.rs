//! Small formatting helpers shared by the benchmark harness binaries.

/// Formats a duration in seconds the way the paper's tables do: seconds with
/// two or three significant decimals, switching to milliseconds below 0.1 s.
pub fn format_duration(secs: f64) -> String {
    if !secs.is_finite() {
        return "n/a".to_string();
    }
    if secs < 0.1 {
        format!("{:.1} ms", secs * 1000.0)
    } else if secs < 100.0 {
        format!("{secs:.3} s")
    } else {
        format!("{secs:.1} s")
    }
}

/// Converts a byte count to mebibytes (the unit of the paper's Table 7).
pub fn mebibytes(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_pick_sensible_units() {
        assert_eq!(format_duration(0.0123), "12.3 ms");
        assert_eq!(format_duration(1.5), "1.500 s");
        assert_eq!(format_duration(250.0), "250.0 s");
        assert_eq!(format_duration(f64::NAN), "n/a");
    }

    #[test]
    fn mebibyte_conversion() {
        assert_eq!(mebibytes(1024 * 1024), 1.0);
        assert_eq!(mebibytes(0), 0.0);
        assert!((mebibytes(1536 * 1024) - 1.5).abs() < 1e-12);
    }
}

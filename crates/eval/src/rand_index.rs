//! Pair-counting cluster-agreement measures.
//!
//! Labels are `i64` values; negative labels (noise) are treated as ordinary
//! labels, i.e. "noise" is its own cluster. This matches the way the paper
//! compares an approximate result against the exact result: disagreeing on
//! which points are noise must cost accuracy.

use std::collections::HashMap;

use dpc_core::Clustering;

/// Computes the Rand index between two label vectors.
///
/// The Rand index is the fraction of point pairs on which the two clusterings
/// agree (both place the pair in the same cluster, or both in different
/// clusters). It is computed from the contingency table in
/// `O(n + |A|·|B|)` time rather than by enumerating all `n(n−1)/2` pairs.
///
/// # Panics
/// Panics if the two label vectors have different lengths or are empty.
pub fn rand_index(a: &[i64], b: &[i64]) -> f64 {
    let (tp_fp, tp_fn, tp, n) = contingency_counts(a, b);
    let total_pairs = pairs(n);
    if total_pairs == 0.0 {
        return 1.0;
    }
    // Agreements = pairs together in both + pairs separated in both.
    let fp = tp_fp - tp;
    let fn_ = tp_fn - tp;
    let tn = total_pairs - tp - fp - fn_;
    (tp + tn) / total_pairs
}

/// Computes the adjusted Rand index (Hubert & Arabie), which corrects the Rand
/// index for chance agreement: 1.0 for identical clusterings, ≈0.0 for
/// independent ones, possibly negative for adversarial ones.
///
/// # Panics
/// Panics if the two label vectors have different lengths or are empty.
pub fn adjusted_rand_index(a: &[i64], b: &[i64]) -> f64 {
    let (sum_a, sum_b, sum_ab, n) = contingency_counts(a, b);
    let total_pairs = pairs(n);
    if total_pairs == 0.0 {
        return 1.0;
    }
    let expected = sum_a * sum_b / total_pairs;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Both clusterings are trivial (all singletons or one block): they are
        // identical, so return 1.
        return 1.0;
    }
    (sum_ab - expected) / (max_index - expected)
}

/// Estimates the Rand index by sampling `samples` random point pairs with a
/// deterministic LCG. Useful as an `O(samples)` sanity check on very large
/// datasets; Tables 2–5 use the exact [`rand_index`].
///
/// # Panics
/// Panics if the label vectors differ in length, are empty, or `samples == 0`.
pub fn sampled_rand_index(a: &[i64], b: &[i64], samples: usize, seed: u64) -> f64 {
    assert_eq!(a.len(), b.len(), "label vectors must have equal length");
    assert!(!a.is_empty(), "cannot compare empty clusterings");
    assert!(samples > 0, "at least one sample is required");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut state = seed | 1;
    let mut next = move || {
        // SplitMix64 step — deterministic and cheap.
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as usize
    };
    let mut agree = 0usize;
    for _ in 0..samples {
        let i = next() % n;
        let mut j = next() % n;
        if i == j {
            j = (j + 1) % n;
        }
        let same_a = a[i] == a[j];
        let same_b = b[i] == b[j];
        if same_a == same_b {
            agree += 1;
        }
    }
    agree as f64 / samples as f64
}

/// Convenience: Rand index between two [`Clustering`]s (noise treated as its
/// own cluster).
pub fn clustering_rand_index(a: &Clustering, b: &Clustering) -> f64 {
    rand_index(a.labels(), b.labels())
}

/// Returns `(Σ_a C(a_i,2), Σ_b C(b_j,2), Σ_ij C(n_ij,2), n)` over the
/// contingency table of the two labelings.
fn contingency_counts(a: &[i64], b: &[i64]) -> (f64, f64, f64, usize) {
    assert_eq!(a.len(), b.len(), "label vectors must have equal length");
    assert!(!a.is_empty(), "cannot compare empty clusterings");
    let mut count_a: HashMap<i64, u64> = HashMap::new();
    let mut count_b: HashMap<i64, u64> = HashMap::new();
    let mut count_ab: HashMap<(i64, i64), u64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b.iter()) {
        *count_a.entry(x).or_insert(0) += 1;
        *count_b.entry(y).or_insert(0) += 1;
        *count_ab.entry((x, y)).or_insert(0) += 1;
    }
    let sum_a: f64 = count_a.values().map(|&c| pairs(c as usize)).sum();
    let sum_b: f64 = count_b.values().map(|&c| pairs(c as usize)).sum();
    let sum_ab: f64 = count_ab.values().map(|&c| pairs(c as usize)).sum();
    (sum_a, sum_b, sum_ab, a.len())
}

#[inline]
fn pairs(n: usize) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labelings_score_one() {
        let a = vec![0, 0, 1, 1, 2, -1];
        assert_eq!(rand_index(&a, &a), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    fn permuted_label_names_do_not_matter() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![7, 7, 3, 3, 1, 1];
        assert_eq!(rand_index(&a, &b), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
    }

    #[test]
    fn known_hand_computed_value() {
        // Classic example: n = 6.
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 2, 2];
        // Pairs: 15 total. Same in both: (0,1),(3? ) → compute: a-same pairs:
        // {012}->3 pairs, {345}->3 pairs = 6. b-same: {01}=1,{23}=1,{45}=1 = 3.
        // Same in both: (0,1) and (4,5) = 2. Agreements = 2 + (15-6-3+2) = 10.
        assert!((rand_index(&a, &b) - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn completely_disagreeing_split() {
        // One clustering groups everything, the other splits into singletons.
        let a = vec![0; 5];
        let b = vec![0, 1, 2, 3, 4];
        assert_eq!(rand_index(&a, &b), 0.0);
        assert!(adjusted_rand_index(&a, &b) <= 0.0 + 1e-12);
    }

    #[test]
    fn ari_is_near_zero_for_random_labelings() {
        // Large random labelings are nearly independent → ARI ≈ 0 while the
        // plain Rand index can still be high.
        let n = 5000;
        let a: Vec<i64> = (0..n).map(|i| ((i * 2654435761_usize) >> 7) as i64 % 4).collect();
        let b: Vec<i64> = (0..n).map(|i| ((i * 40503_usize) >> 3) as i64 % 4).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.05, "ARI {ari} not near zero");
    }

    #[test]
    fn noise_labels_count_as_a_cluster() {
        let a = vec![0, 0, -1, -1];
        let b = vec![0, 0, 0, 0];
        // Pairs: 6. a-same: (0,1),(2,3) = 2; both-same: 2; agreements = 2 + 0.
        assert!((rand_index(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn rand_index_is_symmetric_and_bounded() {
        let a = vec![0, 1, 0, 2, 2, 1, 0, -1];
        let b = vec![1, 1, 0, 2, 0, 1, 0, 0];
        let ab = rand_index(&a, &b);
        let ba = rand_index(&b, &a);
        assert_eq!(ab, ba);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn sampled_estimate_tracks_exact_value() {
        let n = 2000;
        let a: Vec<i64> = (0..n).map(|i| (i % 5) as i64).collect();
        let b: Vec<i64> = (0..n).map(|i| if i % 50 == 0 { 9 } else { (i % 5) as i64 }).collect();
        let exact = rand_index(&a, &b);
        let sampled = sampled_rand_index(&a, &b, 200_000, 7);
        assert!((exact - sampled).abs() < 0.01, "exact {exact} vs sampled {sampled}");
    }

    #[test]
    fn single_point_clusterings() {
        assert_eq!(rand_index(&[3], &[5]), 1.0);
        assert_eq!(adjusted_rand_index(&[3], &[5]), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = rand_index(&[0, 1], &[0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_labelings_panic() {
        let _ = rand_index(&[], &[]);
    }
}

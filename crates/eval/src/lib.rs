//! Clustering evaluation utilities.
//!
//! The paper measures approximation quality with the **Rand index** between an
//! approximate clustering and Ex-DPC's exact clustering (Tables 2–5). This
//! crate provides the exact pair-counting Rand index, the adjusted Rand index,
//! and a sampled estimator for datasets where the `O(k²·…)` contingency table
//! is fine but callers want an `O(pairs)` spot check, plus small helpers used
//! by the benchmark harness (formatting, memory conversion).

pub mod rand_index;
pub mod report;

pub use rand_index::{adjusted_rand_index, rand_index, sampled_rand_index};
pub use report::{format_duration, mebibytes};
